"""Knob and knob-space abstractions.

A *knob* is a single tunable DBMS configuration parameter.  A
:class:`KnobSpace` is an ordered collection of knobs defining the search
space Theta = Theta_1 x ... x Theta_m from the paper's problem statement
(Section 3).  All tuners in this repository work on the *normalized* unit
hypercube ``[0, 1]^m``; the knob space is responsible for translating
between unit vectors and concrete configuration dictionaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Sequence

import numpy as np

__all__ = [
    "Knob",
    "IntegerKnob",
    "FloatKnob",
    "EnumKnob",
    "KnobSpace",
    "Configuration",
]


class Knob:
    """Base class for a single tunable configuration parameter.

    Parameters
    ----------
    name:
        The configuration variable name (e.g. ``innodb_buffer_pool_size``).
    default:
        The vendor-default value.
    unit:
        Optional human-readable unit ("bytes", "ms", ...), documentation only.
    restart_required:
        Whether changing the knob requires a DBMS restart.  The paper tunes
        only dynamic (no-restart) knobs; the flag lets a space filter them.
    """

    def __init__(self, name: str, default, unit: str = "", restart_required: bool = False):
        self.name = name
        self.default = default
        self.unit = unit
        self.restart_required = restart_required

    # -- interface -------------------------------------------------------
    def to_unit(self, value) -> float:
        """Map a concrete value into [0, 1]."""
        raise NotImplementedError

    def from_unit(self, u: float):
        """Map a unit-interval coordinate back to a concrete value."""
        raise NotImplementedError

    def clip(self, value):
        """Clamp a concrete value into the legal range."""
        raise NotImplementedError

    def grid(self, resolution: int) -> List:
        """Return up to ``resolution`` representative concrete values."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, default={self.default!r})"


class IntegerKnob(Knob):
    """An integer-valued knob on ``[low, high]``, optionally log-scaled.

    Log scaling is important for size-like knobs (buffer sizes span
    kilobytes to tens of gigabytes); it makes the unit-space geometry match
    how DBAs reason about these parameters.
    """

    def __init__(self, name: str, low: int, high: int, default: int,
                 unit: str = "", log_scale: bool = False, restart_required: bool = False):
        if low >= high:
            raise ValueError(f"knob {name}: low {low} must be < high {high}")
        if not (low <= default <= high):
            raise ValueError(f"knob {name}: default {default} outside [{low}, {high}]")
        if log_scale and low <= 0:
            raise ValueError(f"knob {name}: log scale requires positive low, got {low}")
        super().__init__(name, default, unit, restart_required)
        self.low = int(low)
        self.high = int(high)
        self.log_scale = log_scale

    def to_unit(self, value) -> float:
        value = self.clip(value)
        if self.log_scale:
            return ((math.log(value) - math.log(self.low))
                    / (math.log(self.high) - math.log(self.low)))
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> int:
        u = min(1.0, max(0.0, float(u)))
        if self.log_scale:
            raw = math.exp(math.log(self.low) + u * (math.log(self.high) - math.log(self.low)))
        else:
            raw = self.low + u * (self.high - self.low)
        return int(self.clip(int(round(raw))))

    def clip(self, value) -> int:
        return int(min(self.high, max(self.low, int(value))))

    def grid(self, resolution: int) -> List[int]:
        units = np.linspace(0.0, 1.0, resolution)
        values = sorted({self.from_unit(u) for u in units})
        return values


class FloatKnob(Knob):
    """A real-valued knob on ``[low, high]``."""

    def __init__(self, name: str, low: float, high: float, default: float,
                 unit: str = "", log_scale: bool = False, restart_required: bool = False):
        if low >= high:
            raise ValueError(f"knob {name}: low {low} must be < high {high}")
        if not (low <= default <= high):
            raise ValueError(f"knob {name}: default {default} outside [{low}, {high}]")
        if log_scale and low <= 0:
            raise ValueError(f"knob {name}: log scale requires positive low, got {low}")
        super().__init__(name, default, unit, restart_required)
        self.low = float(low)
        self.high = float(high)
        self.log_scale = log_scale

    def to_unit(self, value) -> float:
        value = self.clip(value)
        if self.log_scale:
            return ((math.log(value) - math.log(self.low))
                    / (math.log(self.high) - math.log(self.low)))
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        u = min(1.0, max(0.0, float(u)))
        if self.log_scale:
            span = math.log(self.high) - math.log(self.low)
            return float(math.exp(math.log(self.low) + u * span))
        return float(self.low + u * (self.high - self.low))

    def clip(self, value) -> float:
        return float(min(self.high, max(self.low, float(value))))

    def grid(self, resolution: int) -> List[float]:
        return [self.from_unit(u) for u in np.linspace(0.0, 1.0, resolution)]


class EnumKnob(Knob):
    """A categorical knob with a finite, ordered list of choices.

    The choices are embedded evenly on [0, 1].  The paper notes that knobs
    *without intrinsic ordering* (e.g. ``innodb_thread_concurrency`` where 0
    means "unlimited") are exactly the ones the GP mis-extrapolates on and
    the white box must guard; representing them as enums keeps that
    behaviour reproducible.
    """

    def __init__(self, name: str, choices: Sequence, default, unit: str = "",
                 restart_required: bool = False):
        choices = list(choices)
        if len(choices) < 2:
            raise ValueError(f"knob {name}: need at least 2 choices")
        if default not in choices:
            raise ValueError(f"knob {name}: default {default!r} not in choices")
        super().__init__(name, default, unit, restart_required)
        self.choices = choices

    def to_unit(self, value) -> float:
        try:
            idx = self.choices.index(value)
        except ValueError:
            idx = self.choices.index(self.clip(value))
        return idx / (len(self.choices) - 1)

    def from_unit(self, u: float):
        u = min(1.0, max(0.0, float(u)))
        idx = int(round(u * (len(self.choices) - 1)))
        return self.choices[idx]

    def clip(self, value):
        if value in self.choices:
            return value
        # fall back to nearest choice for numeric-like enums
        try:
            numeric = [float(c) for c in self.choices]
            target = float(value)
            best = int(np.argmin([abs(n - target) for n in numeric]))
            return self.choices[best]
        except (TypeError, ValueError):
            return self.default

    def grid(self, resolution: int) -> List:
        return list(self.choices)


Configuration = Dict[str, object]
"""A concrete configuration: knob name -> concrete value."""


@dataclass
class KnobSpace:
    """An ordered collection of knobs with vector <-> dict conversion."""

    knobs: List[Knob] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [k.name for k in self.knobs]
        if len(names) != len(set(names)):
            raise ValueError("duplicate knob names in KnobSpace")
        self._by_name = {k.name: k for k in self.knobs}

    # -- container protocol ----------------------------------------------
    def __len__(self) -> int:
        return len(self.knobs)

    def __iter__(self) -> Iterator[Knob]:
        return iter(self.knobs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Knob:
        return self._by_name[name]

    @property
    def names(self) -> List[str]:
        return [k.name for k in self.knobs]

    @property
    def dim(self) -> int:
        return len(self.knobs)

    # -- conversions -------------------------------------------------------
    def default_config(self) -> Configuration:
        return {k.name: k.default for k in self.knobs}

    def default_vector(self) -> np.ndarray:
        return self.to_unit(self.default_config())

    def to_unit(self, config: Mapping[str, object]) -> np.ndarray:
        """Convert a config dict to a unit vector; missing knobs use defaults."""
        vec = np.empty(len(self.knobs))
        for i, knob in enumerate(self.knobs):
            value = config.get(knob.name, knob.default)
            vec[i] = knob.to_unit(value)
        return vec

    def from_unit(self, vector: np.ndarray) -> Configuration:
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (len(self.knobs),):
            raise ValueError(
                f"vector shape {vector.shape} does not match space dim {len(self.knobs)}")
        return {knob.name: knob.from_unit(u) for knob, u in zip(self.knobs, vector)}

    def decode_columns(self, vectors: np.ndarray) -> Dict[str, object]:
        """Columnar decode: knob name -> column of concrete values.

        Numeric knobs decode to numpy arrays (``int64``/``float64``);
        enum and custom knobs decode to plain lists of their concrete
        objects.  This is the table the vectorized white-box rules
        consume — one array op per knob instead of one Python call per
        (candidate, knob) pair.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        if vectors.shape[1] != len(self.knobs):
            raise ValueError(
                f"batch shape {vectors.shape} does not match space dim {len(self.knobs)}")
        columns: Dict[str, object] = {}
        for i, knob in enumerate(self.knobs):
            u = np.clip(vectors[:, i], 0.0, 1.0)
            if isinstance(knob, (IntegerKnob, FloatKnob)):
                if knob.log_scale:
                    raw = np.exp(math.log(knob.low)
                                 + u * (math.log(knob.high) - math.log(knob.low)))
                else:
                    raw = knob.low + u * (knob.high - knob.low)
                if isinstance(knob, IntegerKnob):
                    vals = np.clip(np.rint(raw), knob.low, knob.high)
                    columns[knob.name] = vals.astype(np.int64)
                else:
                    columns[knob.name] = np.clip(raw, knob.low, knob.high)
            elif isinstance(knob, EnumKnob):
                idx = np.rint(u * (len(knob.choices) - 1)).astype(np.int64)
                choices = knob.choices
                columns[knob.name] = [choices[j] for j in idx.tolist()]
            else:
                columns[knob.name] = [knob.from_unit(v) for v in u]
        return columns

    def from_unit_batch(self, vectors: np.ndarray) -> List[Configuration]:
        """Vectorized :meth:`from_unit` over a batch of unit vectors.

        Decodes each knob's column with numpy in one shot (see
        :meth:`decode_columns`) and re-assembles per-candidate dicts of
        plain Python values.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        columns = self.decode_columns(vectors)
        n = vectors.shape[0]
        rows: List[List[object]] = []
        for knob in self.knobs:
            col = columns[knob.name]
            rows.append(col.tolist() if isinstance(col, np.ndarray) else col)
        names = self.names
        return [dict(zip(names, row)) for row in zip(*rows)] if n else []

    def clip_config(self, config: Mapping[str, object]) -> Configuration:
        return {k.name: k.clip(config.get(k.name, k.default)) for k in self.knobs}

    def subspace(self, names: Sequence[str]) -> "KnobSpace":
        """Restrict to the named knobs (order follows ``names``)."""
        missing = [n for n in names if n not in self._by_name]
        if missing:
            raise KeyError(f"unknown knobs: {missing}")
        return KnobSpace([self._by_name[n] for n in names])

    def random_vector(self, rng: np.random.Generator) -> np.ndarray:
        return rng.random(len(self.knobs))

    def sample_configs(self, n: int, rng: np.random.Generator) -> List[Configuration]:
        return [self.from_unit(self.random_vector(rng)) for _ in range(n)]
