"""MySQL 5.7 knob definitions used throughout the reproduction.

The paper tunes 40 dynamic (no-restart) configuration knobs chosen by DBAs
for importance.  The list below mirrors well-known MySQL 5.7 dynamic system
variables with realistic ranges for an 8 vCPU / 16 GB cloud instance (the
paper's setup).  Defaults distinguish the *vendor* (MySQL) default from the
*DBA* default used as the initial safety set; the DBA default is produced by
:func:`dba_default_config`.

The 5-knob case-study space (Section 7.2) is produced by
:func:`case_study_space`.
"""

from __future__ import annotations

from typing import Dict

from .knob import Configuration, EnumKnob, IntegerKnob, KnobSpace

__all__ = [
    "MIB",
    "GIB",
    "INSTANCE_MEMORY_BYTES",
    "INSTANCE_VCPUS",
    "mysql57_space",
    "case_study_space",
    "dba_default_config",
    "mysql_default_config",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: The paper's evaluation instance: 8 vCPU, 16 GB RAM.
INSTANCE_MEMORY_BYTES = 16 * GIB
INSTANCE_VCPUS = 8


def mysql57_space() -> KnobSpace:
    """The 40-knob dynamic MySQL 5.7 tuning space.

    Ranges are intentionally wide enough to contain unsafe settings (e.g.
    buffer pool sizes beyond physical memory when combined with per-session
    buffers), because exercising unsafe regions is central to the paper's
    safety evaluation.
    """
    knobs = [
        # -- InnoDB memory ------------------------------------------------
        IntegerKnob("innodb_buffer_pool_size", 128 * MIB, 15 * GIB, 128 * MIB,
                    unit="bytes", log_scale=True),
        IntegerKnob("innodb_change_buffer_max_size", 0, 50, 25, unit="percent"),
        IntegerKnob("innodb_sort_buffer_size", 64 * KIB, 64 * MIB, 1 * MIB,
                    unit="bytes", log_scale=True),
        IntegerKnob("innodb_log_buffer_size", 1 * MIB, 256 * MIB, 16 * MIB,
                    unit="bytes", log_scale=True),
        # -- InnoDB I/O -----------------------------------------------------
        IntegerKnob("innodb_io_capacity", 100, 20000, 200, log_scale=True),
        IntegerKnob("innodb_io_capacity_max", 200, 40000, 2000, log_scale=True),
        IntegerKnob("innodb_read_io_threads", 1, 64, 4),
        IntegerKnob("innodb_write_io_threads", 1, 64, 4),
        IntegerKnob("innodb_purge_threads", 1, 32, 4),
        IntegerKnob("innodb_page_cleaners", 1, 16, 4),
        IntegerKnob("innodb_lru_scan_depth", 100, 16384, 1024, log_scale=True),
        EnumKnob("innodb_flush_neighbors", [0, 1, 2], 1),
        # -- InnoDB durability / logging -----------------------------------
        EnumKnob("innodb_flush_log_at_trx_commit", [0, 1, 2], 1),
        EnumKnob("innodb_flush_log_at_timeout", [1, 2, 5, 10, 30], 1, unit="seconds"),
        IntegerKnob("innodb_max_dirty_pages_pct", 5, 99, 75, unit="percent"),
        IntegerKnob("innodb_max_dirty_pages_pct_lwm", 0, 70, 0, unit="percent"),
        EnumKnob("innodb_adaptive_flushing", ["OFF", "ON"], "ON"),
        IntegerKnob("innodb_adaptive_flushing_lwm", 0, 70, 10, unit="percent"),
        IntegerKnob("innodb_flushing_avg_loops", 1, 1000, 30),
        # -- InnoDB concurrency ---------------------------------------------
        EnumKnob("innodb_thread_concurrency",
                 [0, 1, 2, 4, 8, 16, 32, 64, 128], 0),
        IntegerKnob("innodb_thread_sleep_delay", 0, 1000000, 10000, unit="microseconds"),
        IntegerKnob("innodb_spin_wait_delay", 0, 1500, 6),
        IntegerKnob("innodb_sync_spin_loops", 0, 400, 30),
        IntegerKnob("innodb_concurrency_tickets", 1, 100000, 5000, log_scale=True),
        EnumKnob("innodb_adaptive_hash_index", ["OFF", "ON"], "ON"),
        IntegerKnob("innodb_adaptive_max_sleep_delay", 0, 1000000, 150000,
                    unit="microseconds"),
        # -- InnoDB misc ------------------------------------------------------
        IntegerKnob("innodb_old_blocks_pct", 5, 95, 37, unit="percent"),
        IntegerKnob("innodb_old_blocks_time", 0, 10000, 1000, unit="ms"),
        EnumKnob("innodb_random_read_ahead", ["OFF", "ON"], "OFF"),
        IntegerKnob("innodb_read_ahead_threshold", 0, 64, 56),
        IntegerKnob("innodb_sync_array_size", 1, 1024, 1, log_scale=True),
        # -- session buffers ---------------------------------------------------
        IntegerKnob("sort_buffer_size", 32 * KIB, 256 * MIB, 256 * KIB,
                    unit="bytes", log_scale=True),
        IntegerKnob("join_buffer_size", 128 * KIB, 256 * MIB, 256 * KIB,
                    unit="bytes", log_scale=True),
        IntegerKnob("read_buffer_size", 8 * KIB, 64 * MIB, 128 * KIB,
                    unit="bytes", log_scale=True),
        IntegerKnob("read_rnd_buffer_size", 8 * KIB, 64 * MIB, 256 * KIB,
                    unit="bytes", log_scale=True),
        IntegerKnob("max_heap_table_size", 16 * KIB, 1 * GIB, 16 * MIB,
                    unit="bytes", log_scale=True),
        IntegerKnob("tmp_table_size", 1 * MIB, 1 * GIB, 16 * MIB,
                    unit="bytes", log_scale=True),
        # -- server-level -------------------------------------------------------
        IntegerKnob("table_open_cache", 400, 10000, 2000, log_scale=True),
        IntegerKnob("thread_cache_size", 0, 1000, 9),
        IntegerKnob("max_connections", 100, 10000, 151, log_scale=True),
    ]
    space = KnobSpace(knobs)
    assert space.dim == 40, f"expected 40 knobs, got {space.dim}"
    return space


def case_study_space() -> KnobSpace:
    """The 5-knob space from the Section 7.2 YCSB case study.

    The paper highlights ``innodb_buffer_pool_size`` and
    ``max_heap_table_size`` (Figure 10) and ``innodb_spin_wait_delay`` /
    ``max_heap_table_size`` as the two most important knobs (Figure 12).
    """
    full = mysql57_space()
    return full.subspace([
        "innodb_buffer_pool_size",
        "max_heap_table_size",
        "innodb_spin_wait_delay",
        "innodb_flush_log_at_trx_commit",
        "sort_buffer_size",
    ])


#: DBA prior over knob importance (the paper's 40 knobs are themselves
#: "chosen based on their importance by DBAs"; this ranking seeds the
#: important-direction oracle before fANOVA has enough observations).
IMPORTANCE_PRIOR = {
    "innodb_buffer_pool_size": 1.0,
    "innodb_flush_log_at_trx_commit": 0.9,
    "innodb_io_capacity": 0.7,
    "innodb_thread_concurrency": 0.65,
    "max_heap_table_size": 0.6,
    "tmp_table_size": 0.55,
    "innodb_spin_wait_delay": 0.5,
    "innodb_log_buffer_size": 0.45,
    "join_buffer_size": 0.4,
    "sort_buffer_size": 0.35,
    "innodb_max_dirty_pages_pct": 0.3,
    "innodb_old_blocks_pct": 0.25,
}


def importance_prior_vector(space: KnobSpace) -> "np.ndarray":
    """IMPORTANCE_PRIOR as a vector aligned with ``space`` (0.05 floor)."""
    import numpy as np
    return np.array([max(IMPORTANCE_PRIOR.get(k.name, 0.0), 0.05)
                     for k in space])


def mysql_default_config(space: KnobSpace | None = None) -> Configuration:
    """The vendor (MySQL 5.7) default configuration.

    Notably ``innodb_buffer_pool_size`` = 128 MB, which the paper's Figure 17
    uses as the inferior starting point.
    """
    space = space or mysql57_space()
    return space.default_config()


def dba_default_config(space: KnobSpace | None = None) -> Configuration:
    """An experienced-DBA default for an 8 vCPU / 16 GB instance.

    The paper's DBA default sets the buffer pool to 13 GB (Section 7.3.4);
    we use 12 GB so the DBA default leaves the simulator's swap region with
    comfortable margin, and generally track cloud-provider parameter groups.
    """
    space = space or mysql57_space()
    overrides: Dict[str, object] = {
        "innodb_buffer_pool_size": 12 * GIB,
        "innodb_log_buffer_size": 64 * MIB,
        "innodb_io_capacity": 2000,
        "innodb_io_capacity_max": 4000,
        "innodb_read_io_threads": 8,
        "innodb_write_io_threads": 8,
        "innodb_purge_threads": 4,
        "innodb_page_cleaners": 8,
        "innodb_flush_log_at_trx_commit": 1,
        "innodb_max_dirty_pages_pct": 75,
        "innodb_thread_concurrency": 0,
        "innodb_spin_wait_delay": 6,
        "sort_buffer_size": 2 * MIB,
        "join_buffer_size": 2 * MIB,
        "read_buffer_size": 1 * MIB,
        "read_rnd_buffer_size": 1 * MIB,
        "max_heap_table_size": 64 * MIB,
        "tmp_table_size": 64 * MIB,
        "table_open_cache": 4000,
        "thread_cache_size": 100,
        "max_connections": 2000,
    }
    config = space.default_config()
    for name, value in overrides.items():
        if name in space:
            config[name] = space[name].clip(value)
    return config
