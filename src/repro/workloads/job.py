"""JOB-like analytical workload: 113 multi-join queries.

The Join Order Benchmark (Leis et al., VLDB 2015) runs 113 analytical
queries over the IMDB schema.  We generate 113 query *classes*
programmatically over an IMDB-like schema: each class is a multi-way join
with realistic variation in join count, predicate selectivity, and
aggregation.  The paper executes ten queries per iteration, re-sampling
five of them each time (Section 7.1.1); :meth:`JOBWorkload.mix_weights`
reproduces that query-rotation behaviour deterministically per iteration.

The optimization objective for JOB is execution time (lower is better).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .base import QueryClass, Workload

__all__ = ["JOBWorkload", "build_job_queries"]

_TABLES = [
    ("title", "t", "production_year"),
    ("movie_companies", "mc", "company_type_id"),
    ("company_name", "cn", "country_code"),
    ("movie_info", "mi", "info_type_id"),
    ("movie_info_idx", "mi_idx", "info_type_id"),
    ("cast_info", "ci", "role_id"),
    ("name", "n", "gender"),
    ("aka_name", "an", "person_id"),
    ("movie_keyword", "mk", "keyword_id"),
    ("keyword", "k", "phonetic_code"),
    ("person_info", "pi", "info_type_id"),
    ("char_name", "chn", "imdb_index"),
    ("role_type", "rt", "role"),
    ("company_type", "ct", "kind"),
    ("info_type", "it", "info"),
    ("kind_type", "kt", "kind"),
    ("link_type", "lt", "link"),
    ("movie_link", "ml", "link_type_id"),
    ("complete_cast", "cc", "status_id"),
    ("comp_cast_type", "cct", "kind"),
]


def build_job_queries(n_queries: int = 113, seed: int = 42) -> Tuple[QueryClass, ...]:
    """Generate ``n_queries`` JOB-like analytical query classes."""
    rng = np.random.default_rng(seed)
    classes: List[QueryClass] = []
    for q in range(n_queries):
        n_joins = int(rng.integers(3, 9))
        idx = rng.choice(len(_TABLES), size=n_joins, replace=False)
        tables = [_TABLES[i] for i in idx]
        select_cols = ", ".join(
            f"MIN({alias}.{col}) AS {alias}_{col}" for _, alias, col in tables[:2])
        from_clause = ", ".join(f"{name} AS {alias}" for name, alias, _ in tables)
        join_preds = " AND ".join(
            f"{tables[i][1]}.movie_id = {tables[i + 1][1]}.movie_id"
            for i in range(n_joins - 1))
        _, falias, fcol = tables[-1]
        selectivity = float(rng.uniform(0.02, 0.6))
        filter_pred = f"{falias}.{fcol} > {{n}}"
        order = " ORDER BY 1" if rng.random() < 0.4 else ""
        sql = (f"SELECT {select_cols} FROM {from_clause} "
               f"WHERE {join_preds} AND {filter_pred}{order}")
        base_rows = float(rng.lognormal(np.log(4e5), 0.8))
        classes.append(QueryClass(
            name=f"job_q{q + 1}",
            sql_templates=(sql,),
            read_fraction=1.0,
            point_read=0.0,
            range_scan=float(rng.uniform(0.6, 1.0)),
            sort=0.5 if order else float(rng.uniform(0.1, 0.3)),
            join=float(np.clip(n_joins / 8.0, 0.0, 1.0)),
            temp_table=float(rng.uniform(0.3, 0.8)),
            lock=0.0,
            log_write=0.0,
            rows_examined=base_rows,
            filter_ratio=1.0 - selectivity,
            uses_index=bool(rng.random() < 0.5),
        ))
    return tuple(classes)


class JOBWorkload(Workload):
    """JOB-like analytical workload with per-iteration query rotation.

    Each iteration executes ``queries_per_iter`` query classes; half of the
    active set is re-sampled each iteration (the paper re-samples 5 of 10).
    """

    name = "job"
    is_olap = True
    base_rate = 10.0
    base_query_seconds = 4.0    # nominal seconds/query at reference config
    initial_data_gb = 9.0
    working_set_fraction = 0.95  # scans touch nearly everything
    skew = 0.1

    def __init__(self, seed: int = 0, n_queries: int = 113,
                 queries_per_iter: int = 10, resample: int = 5,
                 dynamic: bool = True) -> None:
        super().__init__(seed)
        self.classes = build_job_queries(n_queries, seed=seed + 42)
        self.queries_per_iter = int(queries_per_iter)
        self.resample = int(resample)
        self.dynamic = dynamic

    def _active_set(self, iteration: int) -> np.ndarray:
        """Deterministic active query-class indices for an iteration."""
        n = len(self.classes)
        rng0 = np.random.default_rng(self.seed + 1234)
        active = rng0.choice(n, size=self.queries_per_iter, replace=False)
        if not self.dynamic:
            return active
        for it in range(1, iteration + 1):
            rng = np.random.default_rng(self.seed + 5555 + it)
            drop = rng.choice(self.queries_per_iter, size=self.resample, replace=False)
            remaining = np.delete(active, drop)
            pool = np.setdiff1d(np.arange(n), remaining)
            new = rng.choice(pool, size=self.resample, replace=False)
            active = np.concatenate([remaining, new])
        return active

    # caching: recomputing the rotation chain is O(iteration); memoize.
    def active_set(self, iteration: int) -> np.ndarray:
        cache = getattr(self, "_active_cache", None)
        if cache is None:
            cache = {}
            self._active_cache = cache
        if iteration not in cache:
            if iteration > 0 and (iteration - 1) in cache:
                active = cache[iteration - 1]
                n = len(self.classes)
                rng = np.random.default_rng(self.seed + 5555 + iteration)
                drop = rng.choice(self.queries_per_iter, size=self.resample, replace=False)
                remaining = np.delete(active, drop)
                pool = np.setdiff1d(np.arange(n), remaining)
                new = rng.choice(pool, size=self.resample, replace=False)
                cache[iteration] = np.concatenate([remaining, new])
            else:
                cache[iteration] = self._active_set(iteration)
        return cache[iteration]

    def mix_weights(self, iteration: int) -> np.ndarray:
        weights = np.zeros(len(self.classes))
        weights[self.active_set(iteration)] = 1.0
        return weights / weights.sum()
