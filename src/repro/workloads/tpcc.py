"""TPC-C workload: write-heavy OLTP with complex relations.

Five transaction types with the standard mix (NewOrder 45%, Payment 43%,
OrderStatus 4%, Delivery 4%, StockLevel 4%).  In dynamic mode the weights
follow the paper's recipe (Section 7.1.1): sampled from a normal
distribution whose mean is a sine function of the iteration with 10%
standard deviation.  Because TPC-C is write-heavy, its data grows during
the run — the paper observes 18 GB -> 48 GB over 400 intervals.
"""

from __future__ import annotations

import numpy as np

from .base import QueryClass, Workload

__all__ = ["TPCCWorkload", "TPCC_CLASSES"]

TPCC_CLASSES = (
    QueryClass(
        name="NewOrder",
        sql_templates=(
            "SELECT c_discount, c_last, c_credit FROM customer WHERE c_w_id = {id} AND c_d_id = {n} AND c_id = {id}",
            "SELECT s_quantity, s_data FROM stock WHERE s_i_id = {id} AND s_w_id = {id} FOR UPDATE",
            "INSERT INTO orders (o_id, o_d_id, o_w_id, o_c_id) VALUES ({id}, {n}, {id}, {id})",
            "INSERT INTO order_line (ol_o_id, ol_d_id, ol_w_id, ol_number, ol_i_id) VALUES ({id}, {n}, {id}, {n}, {id})",
            "UPDATE stock SET s_quantity = {n} WHERE s_i_id = {id} AND s_w_id = {id}",
        ),
        read_fraction=0.45, point_read=0.8, range_scan=0.05, sort=0.0,
        join=0.15, temp_table=0.02, lock=0.55, log_write=0.9,
        rows_examined=46.0, filter_ratio=0.1, uses_index=True,
    ),
    QueryClass(
        name="Payment",
        sql_templates=(
            "UPDATE warehouse SET w_ytd = w_ytd + {n} WHERE w_id = {id}",
            "UPDATE district SET d_ytd = d_ytd + {n} WHERE d_w_id = {id} AND d_id = {n}",
            "SELECT c_first, c_middle, c_last FROM customer WHERE c_w_id = {id} AND c_d_id = {n} AND c_last = {str} ORDER BY c_first",
            "UPDATE customer SET c_balance = c_balance - {n} WHERE c_w_id = {id} AND c_d_id = {n} AND c_id = {id}",
            "INSERT INTO history (h_c_d_id, h_c_w_id, h_c_id, h_amount) VALUES ({n}, {id}, {id}, {n})",
        ),
        read_fraction=0.30, point_read=0.75, range_scan=0.05, sort=0.1,
        join=0.05, temp_table=0.02, lock=0.7, log_write=0.95,
        rows_examined=12.0, filter_ratio=0.2, uses_index=True,
    ),
    QueryClass(
        name="OrderStatus",
        sql_templates=(
            "SELECT c_balance, c_first, c_middle, c_last FROM customer WHERE c_w_id = {id} AND c_d_id = {n} AND c_id = {id}",
            "SELECT o_id, o_carrier_id, o_entry_d FROM orders WHERE o_w_id = {id} AND o_d_id = {n} AND o_c_id = {id} ORDER BY o_id DESC LIMIT 1",
            "SELECT ol_i_id, ol_supply_w_id, ol_quantity FROM order_line WHERE ol_w_id = {id} AND ol_d_id = {n} AND ol_o_id = {id}",
        ),
        read_fraction=1.0, point_read=0.7, range_scan=0.25, sort=0.25,
        join=0.1, temp_table=0.05, lock=0.05, log_write=0.0,
        rows_examined=28.0, filter_ratio=0.3, uses_index=True,
    ),
    QueryClass(
        name="Delivery",
        sql_templates=(
            "SELECT no_o_id FROM new_order WHERE no_d_id = {n} AND no_w_id = {id} ORDER BY no_o_id ASC LIMIT 1",
            "DELETE FROM new_order WHERE no_d_id = {n} AND no_w_id = {id} AND no_o_id = {id}",
            "UPDATE orders SET o_carrier_id = {n} WHERE o_id = {id} AND o_d_id = {n} AND o_w_id = {id}",
            "UPDATE order_line SET ol_delivery_d = {str} WHERE ol_o_id = {id} AND ol_d_id = {n} AND ol_w_id = {id}",
            "UPDATE customer SET c_balance = c_balance + {n} WHERE c_id = {id} AND c_d_id = {n} AND c_w_id = {id}",
        ),
        read_fraction=0.25, point_read=0.6, range_scan=0.15, sort=0.1,
        join=0.05, temp_table=0.02, lock=0.65, log_write=0.9,
        rows_examined=130.0, filter_ratio=0.15, uses_index=True,
    ),
    QueryClass(
        name="StockLevel",
        sql_templates=(
            "SELECT d_next_o_id FROM district WHERE d_w_id = {id} AND d_id = {n}",
            "SELECT COUNT(DISTINCT s_i_id) FROM order_line, stock WHERE ol_w_id = {id} AND ol_d_id = {n} AND ol_o_id < {id} AND s_quantity < {n}",
        ),
        read_fraction=1.0, point_read=0.2, range_scan=0.8, sort=0.1,
        join=0.7, temp_table=0.4, lock=0.05, log_write=0.0,
        rows_examined=1200.0, filter_ratio=0.8, uses_index=False,
    ),
)

_BASE_WEIGHTS = np.array([0.45, 0.43, 0.04, 0.04, 0.04])


class TPCCWorkload(Workload):
    """TPC-C with optional sine-varying transaction weights and data growth.

    Parameters
    ----------
    dynamic:
        Vary transaction weights over iterations (paper Section 7.1.1).
    grow_data:
        Grow the data from 18 GB toward 48 GB across ``growth_iters``.
    period:
        Sine period (iterations) of the weight oscillation.
    """

    classes = TPCC_CLASSES
    name = "tpcc"
    is_olap = False
    base_rate = 800.0          # txn/s magnitude matching Figure 1(c)
    initial_data_gb = 18.0
    working_set_fraction = 0.65
    skew = 0.4

    def __init__(self, seed: int = 0, dynamic: bool = True, grow_data: bool = True,
                 period: int = 80, weight_std: float = 0.10,
                 growth_iters: int = 400, final_data_gb: float = 48.0) -> None:
        super().__init__(seed)
        self.dynamic = dynamic
        self.grow_data = grow_data
        self.period = int(period)
        self.weight_std = float(weight_std)
        self.growth_iters = int(growth_iters)
        self.final_data_gb = float(final_data_gb)

    def mix_weights(self, iteration: int) -> np.ndarray:
        if not self.dynamic:
            return _BASE_WEIGHTS / _BASE_WEIGHTS.sum()
        rng = np.random.default_rng(self.seed + 104729 * iteration)
        phase = 2.0 * np.pi * iteration / self.period
        # shift mass between the write-heavy pair and the read classes
        swing = 0.5 * (1.0 + np.sin(phase))  # 0..1
        means = _BASE_WEIGHTS.copy()
        means[0] *= 0.5 + swing           # NewOrder
        means[1] *= 0.5 + swing           # Payment
        means[2] *= 0.5 + 2.0 * (1 - swing)  # OrderStatus
        means[3] *= 0.5 + (1 - swing)
        means[4] *= 0.5 + 2.0 * (1 - swing)  # StockLevel
        weights = np.abs(rng.normal(means, self.weight_std * means))
        weights = np.maximum(weights, 1e-3)
        return weights / weights.sum()

    def data_size_gb(self, iteration: int) -> float:
        if not self.grow_data:
            return self.initial_data_gb
        frac = min(1.0, max(0.0, iteration / self.growth_iters))
        return self.initial_data_gb + frac * (self.final_data_gb - self.initial_data_gb)
