"""Dynamic workload compositions.

* :class:`AlternatingWorkload` — the transactional-analytical daily cycle
  (Section 7.1.2): alternate two workloads every ``period`` iterations.
* :class:`RealWorldTrace` — a synthetic stand-in for the paper's
  proprietary production trace (Section 7.1.3): a diurnal mixture whose
  read:write ratio wanders between 3:1 and 74:1 and whose arrival rate
  follows a day/night envelope, matching the published characteristics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import QueryClass, Workload, WorkloadProfile, WorkloadSnapshot

__all__ = ["AlternatingWorkload", "RealWorldTrace"]


class AlternatingWorkload(Workload):
    """Alternate between two workloads every ``period`` iterations.

    The active workload at iteration ``i`` is ``first`` when
    ``(i // period)`` is even, else ``second``.  Profiles, snapshots, and
    the OLAP flag all follow the active workload, so the tuner experiences
    an abrupt context switch exactly as in the paper's Figure 6(a).
    """

    name = "alternating"

    def __init__(self, first: Workload, second: Workload, period: int = 100,
                 seed: int = 0) -> None:
        super().__init__(seed)
        self.first = first
        self.second = second
        self.period = int(period)

    def active(self, iteration: int) -> Workload:
        return self.first if (iteration // self.period) % 2 == 0 else self.second

    def local_iteration(self, iteration: int) -> int:
        """Iteration index within the active workload's own timeline."""
        block = iteration // self.period
        within = iteration % self.period
        return (block // 2) * self.period + within

    def profile(self, iteration: int) -> WorkloadProfile:
        return self.active(iteration).profile(self.local_iteration(iteration))

    def snapshot(self, iteration: int, n_queries: int = 30,
                 seed_offset: int = 0) -> WorkloadSnapshot:
        snap = self.active(iteration).snapshot(
            self.local_iteration(iteration), n_queries, seed_offset)
        snap.iteration = iteration
        return snap

    @property
    def is_olap(self) -> bool:  # type: ignore[override]
        raise AttributeError(
            "AlternatingWorkload has no static is_olap; query profile(i).is_olap")


_OLTP_READ = QueryClass(
    name="AppRead",
    sql_templates=(
        "SELECT * FROM orders WHERE order_id = {id}",
        "SELECT item_id, price FROM items WHERE category = {n} ORDER BY price LIMIT 20",
        "SELECT u.name, o.total FROM users AS u, orders AS o WHERE u.uid = o.uid AND u.uid = {id}",
    ),
    read_fraction=1.0, point_read=0.7, range_scan=0.3, sort=0.2,
    join=0.25, temp_table=0.1, lock=0.0, log_write=0.0,
    rows_examined=60.0, filter_ratio=0.4, uses_index=True,
)
_OLTP_WRITE = QueryClass(
    name="AppWrite",
    sql_templates=(
        "INSERT INTO orders (uid, item_id, total) VALUES ({id}, {id}, {n})",
        "UPDATE items SET stock = stock - 1 WHERE item_id = {id}",
        "DELETE FROM carts WHERE session_id = {id}",
    ),
    read_fraction=0.1, point_read=0.6, range_scan=0.0, sort=0.0,
    join=0.0, temp_table=0.0, lock=0.4, log_write=0.9,
    rows_examined=3.0, filter_ratio=0.0, uses_index=True,
)


class RealWorldTrace(Workload):
    """Synthetic diurnal application trace (substitute for the paper's).

    ``minutes_per_iteration`` maps iterations onto wall-clock time; the
    default 3-minute interval over ~120 iterations spans the paper's
    10:00-16:00 window.  Read:write ratio varies between 3:1 and 74:1;
    arrival rate follows a smooth diurnal envelope plus bursts.
    """

    classes = (_OLTP_READ, _OLTP_WRITE)
    name = "realworld"
    is_olap = False
    base_rate = 6000.0
    initial_data_gb = 22.0
    working_set_fraction = 0.45
    skew = 0.6

    def __init__(self, seed: int = 0, minutes_per_iteration: float = 3.0,
                 peak_qps: float = 9000.0) -> None:
        super().__init__(seed)
        self.minutes_per_iteration = float(minutes_per_iteration)
        self.peak_qps = float(peak_qps)

    def read_write_ratio(self, iteration: int) -> float:
        """Read:write ratio in [3, 74] following a slow drift + bursts."""
        minutes = iteration * self.minutes_per_iteration
        slow = 0.5 * (1.0 + np.sin(2.0 * np.pi * minutes / 360.0 - 1.2))
        rng = np.random.default_rng(self.seed + 17 * (iteration // 10))
        burst = float(rng.uniform(0.0, 0.25))
        frac = float(np.clip(slow + burst, 0.0, 1.0))
        return 3.0 + frac * (74.0 - 3.0)

    def mix_weights(self, iteration: int) -> np.ndarray:
        ratio = self.read_write_ratio(iteration)
        read = ratio / (ratio + 1.0)
        return np.array([read, 1.0 - read])

    def arrival_rate(self, iteration: int) -> Optional[float]:
        minutes = iteration * self.minutes_per_iteration
        envelope = 0.55 + 0.45 * np.sin(2.0 * np.pi * (minutes + 60.0) / 720.0)
        rng = np.random.default_rng(self.seed + 23 * iteration)
        jitter = float(rng.lognormal(0.0, 0.08))
        return float(self.peak_qps * envelope * jitter)
