"""Workload generators (TPC-C, Twitter, YCSB, JOB, dynamic compositions)."""

from .base import (
    QueryClass,
    Workload,
    WorkloadProfile,
    WorkloadSnapshot,
    mixture_profile,
)
from .dynamic import AlternatingWorkload, RealWorldTrace
from .job import JOBWorkload, build_job_queries
from .tpcc import TPCCWorkload
from .twitter import TwitterWorkload
from .ycsb import YCSBWorkload, ycsb_read_ratio_trace

__all__ = [
    "QueryClass",
    "Workload",
    "WorkloadProfile",
    "WorkloadSnapshot",
    "mixture_profile",
    "TPCCWorkload",
    "TwitterWorkload",
    "YCSBWorkload",
    "ycsb_read_ratio_trace",
    "JOBWorkload",
    "build_job_queries",
    "AlternatingWorkload",
    "RealWorldTrace",
]
