"""YCSB workload used in the Section 7.2 case study.

A key-value style workload whose read ratio follows a configurable trace —
the paper's Figure 9 shows the read ratio wandering between ~40% and 100%
over 400 iterations.  The default trace reproduces that pattern.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .base import QueryClass, Workload

__all__ = ["YCSBWorkload", "ycsb_read_ratio_trace"]

_READ = QueryClass(
    name="Read",
    sql_templates=("SELECT * FROM usertable WHERE ycsb_key = {id}",),
    read_fraction=1.0, point_read=1.0, range_scan=0.0, sort=0.0,
    join=0.0, temp_table=0.0, lock=0.0, log_write=0.0,
    rows_examined=1.0, filter_ratio=0.0, uses_index=True,
)
_SCAN = QueryClass(
    name="Scan",
    sql_templates=("SELECT * FROM usertable WHERE ycsb_key >= {id} LIMIT {n}",),
    read_fraction=1.0, point_read=0.0, range_scan=1.0, sort=0.2,
    join=0.0, temp_table=0.45, lock=0.0, log_write=0.0,
    rows_examined=500.0, filter_ratio=0.3, uses_index=True,
)
_UPDATE = QueryClass(
    name="Update",
    sql_templates=("UPDATE usertable SET field0 = {str} WHERE ycsb_key = {id}",),
    read_fraction=0.0, point_read=0.8, range_scan=0.0, sort=0.0,
    join=0.0, temp_table=0.0, lock=0.4, log_write=0.9,
    rows_examined=1.0, filter_ratio=0.0, uses_index=True,
)
_INSERT = QueryClass(
    name="Insert",
    sql_templates=("INSERT INTO usertable (ycsb_key, field0) VALUES ({id}, {str})",),
    read_fraction=0.0, point_read=0.0, range_scan=0.0, sort=0.0,
    join=0.0, temp_table=0.0, lock=0.3, log_write=0.95,
    rows_examined=1.0, filter_ratio=0.0, uses_index=True,
)


def ycsb_read_ratio_trace(iteration: int, seed: int = 0) -> float:
    """The Figure 9 style read-ratio trace: 40%..100% with plateaus."""
    rng = np.random.default_rng(seed + 31 * (iteration // 40))
    base = 0.70 + 0.30 * np.sin(2.0 * np.pi * iteration / 160.0)
    step = float(rng.uniform(-0.12, 0.12))
    return float(np.clip(base + step, 0.40, 1.0))


class YCSBWorkload(Workload):
    """YCSB with a pluggable read-ratio trace.

    Parameters
    ----------
    read_ratio_fn:
        ``iteration -> read ratio in [0, 1]``; defaults to the Figure 9
        trace.  Pass ``lambda i: 0.5`` (etc.) for a static mix.
    scan_fraction:
        Fraction of read operations that are range scans.
    """

    classes = (_READ, _SCAN, _UPDATE, _INSERT)
    name = "ycsb"
    is_olap = False
    base_rate = 24000.0      # txn/s magnitude matching Figure 10/11
    initial_data_gb = 12.0
    working_set_fraction = 0.5
    skew = 0.7

    def __init__(self, seed: int = 0,
                 read_ratio_fn: Optional[Callable[[int], float]] = None,
                 scan_fraction: float = 0.25) -> None:
        super().__init__(seed)
        self._read_ratio_fn = read_ratio_fn or (
            lambda i: ycsb_read_ratio_trace(i, seed))
        self.scan_fraction = float(scan_fraction)

    def read_ratio(self, iteration: int) -> float:
        return float(np.clip(self._read_ratio_fn(iteration), 0.0, 1.0))

    def mix_weights(self, iteration: int) -> np.ndarray:
        r = self.read_ratio(iteration)
        w = 1.0 - r
        weights = np.array([
            r * (1.0 - self.scan_fraction),
            r * self.scan_fraction,
            w * 0.8,
            w * 0.2,
        ])
        weights = np.maximum(weights, 1e-6)
        return weights / weights.sum()
