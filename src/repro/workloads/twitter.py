"""Twitter workload (OLTP-Bench): skewed, read-mostly web workload.

Characterized by heavily skewed many-to-many relationships and non-uniform
access (Section 7 of the paper).  Five transaction types following the
OLTP-Bench Twitter mix; dynamic mode varies the weights the same way as
TPC-C (normal around a sine of the iteration, 10% std).
"""

from __future__ import annotations

import numpy as np

from .base import QueryClass, Workload

__all__ = ["TwitterWorkload", "TWITTER_CLASSES"]

TWITTER_CLASSES = (
    QueryClass(
        name="GetTweet",
        sql_templates=(
            "SELECT * FROM tweets WHERE id = {id}",
        ),
        read_fraction=1.0, point_read=1.0, range_scan=0.0, sort=0.0,
        join=0.0, temp_table=0.0, lock=0.0, log_write=0.0,
        rows_examined=1.0, filter_ratio=0.0, uses_index=True,
    ),
    QueryClass(
        name="GetTweetsFromFollowing",
        sql_templates=(
            "SELECT f2 FROM follows WHERE f1 = {id} LIMIT {n}",
            "SELECT * FROM tweets WHERE uid IN ({id}, {id}, {id}) ORDER BY createdate DESC LIMIT 20",
        ),
        read_fraction=1.0, point_read=0.5, range_scan=0.5, sort=0.5,
        join=0.3, temp_table=0.35, lock=0.0, log_write=0.0,
        rows_examined=420.0, filter_ratio=0.6, uses_index=True,
    ),
    QueryClass(
        name="GetFollowers",
        sql_templates=(
            "SELECT f2 FROM followers WHERE f1 = {id} LIMIT 20",
            "SELECT uid, name FROM user_profiles WHERE uid IN ({id}, {id}, {id})",
        ),
        read_fraction=1.0, point_read=0.6, range_scan=0.4, sort=0.1,
        join=0.2, temp_table=0.15, lock=0.0, log_write=0.0,
        rows_examined=160.0, filter_ratio=0.4, uses_index=True,
    ),
    QueryClass(
        name="GetUserTweets",
        sql_templates=(
            "SELECT * FROM tweets WHERE uid = {id} ORDER BY createdate DESC LIMIT 10",
        ),
        read_fraction=1.0, point_read=0.3, range_scan=0.7, sort=0.6,
        join=0.0, temp_table=0.25, lock=0.0, log_write=0.0,
        rows_examined=350.0, filter_ratio=0.5, uses_index=True,
    ),
    QueryClass(
        name="InsertTweet",
        sql_templates=(
            "INSERT INTO tweets (uid, text, createdate) VALUES ({id}, {str}, {str})",
            "UPDATE user_profiles SET num_tweets = num_tweets + 1 WHERE uid = {id}",
        ),
        read_fraction=0.1, point_read=0.5, range_scan=0.0, sort=0.0,
        join=0.0, temp_table=0.0, lock=0.3, log_write=0.9,
        rows_examined=2.0, filter_ratio=0.0, uses_index=True,
    ),
)

_BASE_WEIGHTS = np.array([0.35, 0.30, 0.12, 0.15, 0.08])


class TwitterWorkload(Workload):
    """Twitter with optional sine-varying composition."""

    classes = TWITTER_CLASSES
    name = "twitter"
    is_olap = False
    base_rate = 16000.0        # txn/s magnitude matching Figure 18(b)
    initial_data_gb = 29.0
    working_set_fraction = 0.30   # heavy skew -> small hot set
    skew = 0.9

    def __init__(self, seed: int = 0, dynamic: bool = True,
                 period: int = 70, weight_std: float = 0.10) -> None:
        super().__init__(seed)
        self.dynamic = dynamic
        self.period = int(period)
        self.weight_std = float(weight_std)

    def mix_weights(self, iteration: int) -> np.ndarray:
        if not self.dynamic:
            return _BASE_WEIGHTS / _BASE_WEIGHTS.sum()
        rng = np.random.default_rng(self.seed + 99991 * iteration)
        phase = 2.0 * np.pi * iteration / self.period
        swing = 0.5 * (1.0 + np.sin(phase))
        means = _BASE_WEIGHTS.copy()
        means[0] *= 0.6 + 0.8 * swing          # point reads
        means[1] *= 0.6 + 0.8 * (1.0 - swing)  # timeline scans
        means[3] *= 0.6 + 0.8 * (1.0 - swing)
        means[4] *= 0.6 + 0.8 * swing          # writes
        weights = np.abs(rng.normal(means, self.weight_std * means))
        weights = np.maximum(weights, 1e-3)
        return weights / weights.sum()
