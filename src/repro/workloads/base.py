"""Workload abstractions.

A workload produces, per tuning interval (iteration), two synchronized
views of itself:

* a :class:`WorkloadProfile` — the quantitative *demand vector* the DBMS
  simulator uses to compute performance (read ratio, scan/join intensity,
  working-set size, ...), and
* a :class:`WorkloadSnapshot` — what the tuner can actually observe: the
  SQL texts that arrived and the arrival rate, which the context
  featurization module turns into a context vector.

Keeping the two views consistent (same underlying mix weights) is what lets
OnlineTune's learned context correlate with the simulator's behaviour, just
as real workload features correlate with real DBMS behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["QueryClass", "WorkloadProfile", "WorkloadSnapshot", "Workload",
           "mixture_profile"]


@dataclass(frozen=True)
class QueryClass:
    """A query/transaction template within a workload.

    ``sql_templates`` are representative statements issued by one execution
    of this class.  The per-statement demand fields describe *one* execution
    and are blended by mix weight into the workload profile.
    """

    name: str
    sql_templates: Tuple[str, ...]
    read_fraction: float            # fraction of row ops that are reads
    point_read: float = 0.0         # intensity 0..1 of indexed point reads
    range_scan: float = 0.0         # intensity of range/sequential scans
    sort: float = 0.0               # intensity of sorts / order-by
    join: float = 0.0               # intensity of multi-table joins
    temp_table: float = 0.0         # intensity of implicit temp/heap tables
    lock: float = 0.0               # lock-contention contribution
    log_write: float = 0.0          # redo-log write intensity (commits)
    rows_examined: float = 100.0    # typical rows examined per execution
    filter_ratio: float = 0.5       # fraction of examined rows filtered out
    uses_index: bool = True


@dataclass
class WorkloadProfile:
    """Quantitative demand vector consumed by the DBMS simulator."""

    name: str
    read_ratio: float               # reads / (reads + writes) row ops
    point_read: float
    range_scan: float
    sort: float
    join: float
    temp_table: float
    lock_contention: float
    log_write: float
    working_set_gb: float
    data_size_gb: float
    base_rate: float                # nominal txn/s (OLTP) at reference config
    is_olap: bool = False
    base_query_seconds: float = 0.0  # nominal per-query seconds (OLAP)
    arrival_rate: Optional[float] = None  # txn/s cap; None = unlimited
    skew: float = 0.5               # access skew (0 uniform .. 1 extreme)

    def clamped(self) -> "WorkloadProfile":
        """Copy with all intensity fields clipped to [0, 1]."""
        fields = ("read_ratio", "point_read", "range_scan", "sort", "join",
                  "temp_table", "lock_contention", "log_write", "skew")
        updates = {f: float(np.clip(getattr(self, f), 0.0, 1.0)) for f in fields}
        return replace(self, **updates)


@dataclass
class WorkloadSnapshot:
    """What the tuner observes during one interval (the context source)."""

    iteration: int
    queries: List[str]              # sampled SQL texts that arrived
    arrival_rate: float             # observed queries/sec
    # per-query optimizer estimates, aligned with ``queries``
    rows_examined: List[float] = field(default_factory=list)
    filter_ratios: List[float] = field(default_factory=list)
    index_used: List[bool] = field(default_factory=list)


class Workload:
    """Base class: deterministic per-iteration mixes over query classes."""

    #: subclasses set these
    classes: Tuple[QueryClass, ...] = ()
    name: str = "workload"
    is_olap: bool = False
    base_rate: float = 1000.0
    base_query_seconds: float = 0.0
    initial_data_gb: float = 10.0
    working_set_fraction: float = 0.8   # fraction of data that is hot
    skew: float = 0.5

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    # -- hooks subclasses may override -----------------------------------
    def mix_weights(self, iteration: int) -> np.ndarray:
        """Mixture weights over ``classes`` at the given iteration."""
        weights = np.ones(len(self.classes))
        return weights / weights.sum()

    def data_size_gb(self, iteration: int) -> float:
        return self.initial_data_gb

    def arrival_rate(self, iteration: int) -> Optional[float]:
        return None

    # -- derived views -----------------------------------------------------
    def profile(self, iteration: int) -> WorkloadProfile:
        weights = self.mix_weights(iteration)
        prof = mixture_profile(self.name, self.classes, weights)
        data = self.data_size_gb(iteration)
        prof.data_size_gb = data
        prof.working_set_gb = data * self.working_set_fraction
        prof.base_rate = self.base_rate
        prof.is_olap = self.is_olap
        prof.base_query_seconds = self.base_query_seconds
        prof.arrival_rate = self.arrival_rate(iteration)
        prof.skew = self.skew
        return prof.clamped()

    def snapshot(self, iteration: int, n_queries: int = 30,
                 seed_offset: int = 0) -> WorkloadSnapshot:
        """Sample the SQL stream the tuner observes this interval."""
        rng = np.random.default_rng(self.seed + 7919 * iteration + seed_offset)
        weights = self.mix_weights(iteration)
        profile = self.profile(iteration)
        queries: List[str] = []
        rows: List[float] = []
        filters: List[float] = []
        indexed: List[bool] = []
        scale = profile.data_size_gb / max(self.initial_data_gb, 1e-9)
        choices = rng.choice(len(self.classes), size=n_queries, p=weights)
        for idx in choices:
            qc = self.classes[idx]
            template = qc.sql_templates[rng.integers(len(qc.sql_templates))]
            queries.append(_fill_template(template, rng))
            noise = float(rng.lognormal(0.0, 0.1))
            rows.append(qc.rows_examined * scale * noise)
            filters.append(float(np.clip(qc.filter_ratio + rng.normal(0, 0.02), 0, 1)))
            indexed.append(qc.uses_index)
        rate = profile.arrival_rate
        if rate is None:
            # unlimited arrival: observed rate tracks nominal service rate
            rate = profile.base_rate * float(rng.lognormal(0.0, 0.05))
        return WorkloadSnapshot(iteration, queries, float(rate), rows, filters, indexed)


def mixture_profile(name: str, classes: Sequence[QueryClass],
                    weights: np.ndarray) -> WorkloadProfile:
    """Blend query-class demands by mixture weight."""
    weights = np.asarray(weights, dtype=float)
    if len(weights) != len(classes):
        raise ValueError("weights and classes disagree")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    weights = weights / total

    def blend(attr: str) -> float:
        return float(sum(w * getattr(qc, attr) for qc, w in zip(classes, weights)))

    return WorkloadProfile(
        name=name,
        read_ratio=blend("read_fraction"),
        point_read=blend("point_read"),
        range_scan=blend("range_scan"),
        sort=blend("sort"),
        join=blend("join"),
        temp_table=blend("temp_table"),
        lock_contention=blend("lock"),
        log_write=blend("log_write"),
        working_set_gb=0.0,
        data_size_gb=0.0,
        base_rate=0.0,
    )


def _fill_template(template: str, rng: np.random.Generator) -> str:
    """Substitute ``{id}``/``{n}``/``{str}`` placeholders with literals."""
    out = template
    while "{id}" in out:
        out = out.replace("{id}", str(int(rng.integers(1, 1_000_000))), 1)
    while "{n}" in out:
        out = out.replace("{n}", str(int(rng.integers(1, 1000))), 1)
    while "{str}" in out:
        out = out.replace("{str}", "'v%d'" % rng.integers(1, 10_000), 1)
    return out
