"""OnlineTune reproduction: dynamic and safe configuration tuning for
cloud databases (Zhang et al., SIGMOD 2022).

Public API quick tour
---------------------

>>> from repro import (OnlineTune, mysql57_space, dba_default_config,
...                    TPCCWorkload, SimulatedMySQL, TuningSession)
>>> space = mysql57_space()
>>> tuner = OnlineTune(space, seed=0)
>>> db = SimulatedMySQL(space, TPCCWorkload(seed=0),
...                     reference_config=dba_default_config(space))
>>> result = TuningSession(tuner, db, n_iterations=10).run()
>>> result.n_failures
0

Packages
--------

``repro.core``      OnlineTune (contextual modeling + safe recommendation)
``repro.gp``        Gaussian-process substrate
``repro.ml``        DBSCAN / SVM / LSTM / forest / fANOVA substrate
``repro.knobs``     MySQL 5.7 knob space
``repro.dbms``      simulated MySQL instance
``repro.workloads`` TPC-C / Twitter / YCSB / JOB / dynamic traces
``repro.rules``     white-box rules with relaxation
``repro.baselines`` BO / DDPG / QTune / ResTune / MysqlTuner
``repro.harness``   experiment runner + metrics + registry
"""

from .baselines import (
    BOTuner,
    DDPGTuner,
    DefaultTuner,
    MysqlTunerBaseline,
    QTuneTuner,
    ResTuneTuner,
)
from .core import ContextFeaturizer, OnlineTune, OnlineTuneConfig
from .dbms import IntervalResult, PerformanceModel, SimulatedMySQL
from .harness import SessionResult, TuningSession, run_tuners
from .knobs import (
    KnobSpace,
    case_study_space,
    dba_default_config,
    mysql57_space,
    mysql_default_config,
)
from .rules import RuleBook, RuleContext, mysql_rulebook
from .workloads import (
    AlternatingWorkload,
    JOBWorkload,
    RealWorldTrace,
    TPCCWorkload,
    TwitterWorkload,
    YCSBWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "OnlineTune",
    "OnlineTuneConfig",
    "ContextFeaturizer",
    "BOTuner",
    "DDPGTuner",
    "QTuneTuner",
    "ResTuneTuner",
    "MysqlTunerBaseline",
    "DefaultTuner",
    "SimulatedMySQL",
    "PerformanceModel",
    "IntervalResult",
    "KnobSpace",
    "mysql57_space",
    "case_study_space",
    "dba_default_config",
    "mysql_default_config",
    "TPCCWorkload",
    "TwitterWorkload",
    "YCSBWorkload",
    "JOBWorkload",
    "AlternatingWorkload",
    "RealWorldTrace",
    "RuleBook",
    "RuleContext",
    "mysql_rulebook",
    "TuningSession",
    "SessionResult",
    "run_tuners",
    "__version__",
]
