"""OtterTune-style Bayesian optimization baseline.

Gaussian-process surrogate over configurations only (no context), Expected
Improvement acquisition maximized over random candidates in the *global*
configuration space — exactly the offline-tuning behaviour whose
over-exploration the paper's Figure 1(c) illustrates.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..gp.acquisition import expected_improvement
from ..gp.gpr import GaussianProcess
from ..gp.kernels import Matern52Kernel
from ..knobs.knob import Configuration, KnobSpace
from .base import BaseTuner, Feedback, SuggestInput

__all__ = ["BOTuner"]


class BOTuner(BaseTuner):
    """GP + EI black-box optimizer (configuration space only)."""

    name = "BO"

    def __init__(self, space: KnobSpace, n_candidates: int = 2000,
                 n_initial_random: int = 5, refit_every: int = 1,
                 max_observations: int = 300, seed: int = 0) -> None:
        super().__init__(space, seed)
        self.n_candidates = int(n_candidates)
        self.n_initial_random = int(n_initial_random)
        self.refit_every = int(refit_every)
        self.max_observations = int(max_observations)
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self._gp: Optional[GaussianProcess] = None
        self._pending: Optional[np.ndarray] = None
        self._since_fit = 0

    def start(self, initial_config: Configuration,
              initial_performance: float) -> None:
        self._X.append(self.space.to_unit(initial_config))
        self._y.append(float(initial_performance))

    def _fit(self) -> None:
        X = np.array(self._X[-self.max_observations:])
        y = np.array(self._y[-self.max_observations:])
        self._gp = GaussianProcess(kernel=Matern52Kernel())
        # hyperparameter optimization on a sparse schedule keeps the cubic
        # cost manageable as observations accumulate
        optimize = len(y) >= 5 and (len(y) % 5 == 0 or len(y) < 30)
        self._gp.fit(X, y, optimize=optimize)

    def suggest(self, inp: SuggestInput) -> Configuration:
        if len(self._y) < self.n_initial_random:
            vec = self.rng.random(self.space.dim)
        else:
            if self._gp is None or self._since_fit >= self.refit_every:
                self._fit()
                self._since_fit = 0
            candidates = self.rng.random((self.n_candidates, self.space.dim))
            mean, std = self._gp.predict(candidates)
            ei = expected_improvement(mean, std, best=float(np.max(self._y)))
            vec = candidates[int(np.argmax(ei))]
        self._pending = vec
        return self.space.from_unit(vec)

    def observe(self, feedback: Feedback) -> None:
        vec = (self._pending if self._pending is not None
               else self.space.to_unit(feedback.config))
        self._X.append(np.asarray(vec))
        self._y.append(float(feedback.performance))
        self._pending = None
        self._since_fit += 1
