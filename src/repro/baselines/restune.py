"""ResTune-like baseline: RGPE ensemble + constrained acquisition.

ResTune (Zhang et al., SIGMOD 2021) transfers knowledge from source
workloads through an RGPE ensemble (ranking-weighted Gaussian process
ensemble) and optimizes under SLA constraints.  Following the paper's
adaptation for online tuning (Section 7), every 25 observations are
treated as one "source workload" base model; the acquisition is
EI x probability-of-feasibility against the same safety threshold
OnlineTune uses.  Base-model weights follow Feurer et al.'s ranking-loss
bootstrap, computed deterministically from pairwise misrankings.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..gp.acquisition import expected_improvement, probability_of_feasibility
from ..gp.gpr import GaussianProcess
from ..gp.kernels import Matern52Kernel
from ..knobs.knob import Configuration, KnobSpace
from .base import BaseTuner, Feedback, SuggestInput

__all__ = ["ResTuneTuner", "rgpe_weights"]


def _ranking_loss(mean_pred: np.ndarray, y_true: np.ndarray) -> int:
    """Number of misranked pairs between predictions and truth."""
    loss = 0
    n = len(y_true)
    for i in range(n):
        for j in range(i + 1, n):
            if (mean_pred[i] < mean_pred[j]) != (y_true[i] < y_true[j]):
                loss += 1
    return loss


def rgpe_weights(base_models: List[GaussianProcess], X: np.ndarray,
                 y: np.ndarray, target_loss: Optional[int] = None) -> np.ndarray:
    """Ranking-based weights over base models (+ target model last).

    The target model's loss is its leave-one-out-ish in-sample ranking loss
    (0 when it ranks its own data perfectly, which biases weights toward
    the target as data accumulates — the intended RGPE behaviour).
    """
    losses = []
    for model in base_models:
        mean = model.predict(X, return_std=False)
        losses.append(_ranking_loss(mean, y))
    losses.append(target_loss if target_loss is not None else 0)
    losses = np.asarray(losses, dtype=float)
    inv = 1.0 / (1.0 + losses)
    return inv / inv.sum()


class ResTuneTuner(BaseTuner):
    """RGPE ensemble BO with a probability-of-feasibility safety factor."""

    name = "ResTune"

    def __init__(self, space: KnobSpace, chunk_size: int = 25,
                 n_candidates: int = 2000, n_initial_random: int = 5,
                 max_base_models: int = 10, seed: int = 0) -> None:
        super().__init__(space, seed)
        self.chunk_size = int(chunk_size)
        self.n_candidates = int(n_candidates)
        self.n_initial_random = int(n_initial_random)
        self.max_base_models = int(max_base_models)
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self._base_models: List[GaussianProcess] = []
        self._target: Optional[GaussianProcess] = None
        self._pending: Optional[np.ndarray] = None
        self._tau = 0.0

    def start(self, initial_config: Configuration,
              initial_performance: float) -> None:
        self._X.append(self.space.to_unit(initial_config))
        self._y.append(float(initial_performance))

    # -- ensemble management ------------------------------------------------
    def _maybe_freeze_chunk(self) -> None:
        """Freeze the oldest chunk_size observations into a base model."""
        if len(self._X) - self.chunk_size * len(self._base_models) <= 2 * self.chunk_size:
            return
        start = self.chunk_size * len(self._base_models)
        X = np.array(self._X[start: start + self.chunk_size])
        y = np.array(self._y[start: start + self.chunk_size])
        gp = GaussianProcess(kernel=Matern52Kernel())
        gp.fit(X, y, optimize=True)
        self._base_models.append(gp)
        if len(self._base_models) > self.max_base_models:
            self._base_models.pop(0)

    def _fit_target(self) -> Tuple[np.ndarray, np.ndarray]:
        recent = self.chunk_size * len(self._base_models)
        X = np.array(self._X[recent:])
        y = np.array(self._y[recent:])
        if len(y) < 2:
            X = np.array(self._X[-self.chunk_size:])
            y = np.array(self._y[-self.chunk_size:])
        self._target = GaussianProcess(kernel=Matern52Kernel())
        self._target.fit(X, y, optimize=len(y) >= 5)
        return X, y

    def _ensemble_predict(self, candidates: np.ndarray,
                          weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        means = []
        variances = []
        for model in self._base_models + [self._target]:
            mean, std = model.predict(candidates)
            means.append(mean)
            variances.append(std ** 2)
        means = np.array(means)
        variances = np.array(variances)
        mix_mean = weights @ means
        mix_var = weights @ (variances + means ** 2) - mix_mean ** 2
        return mix_mean, np.sqrt(np.maximum(mix_var, 1e-12))

    # -- interaction -----------------------------------------------------------
    def suggest(self, inp: SuggestInput) -> Configuration:
        self._tau = inp.default_performance
        if len(self._y) < self.n_initial_random:
            vec = self.rng.random(self.space.dim)
        else:
            self._maybe_freeze_chunk()
            X, y = self._fit_target()
            if self._base_models:
                weights = rgpe_weights(self._base_models, X, y)
            else:
                weights = np.array([1.0])
            candidates = self.rng.random((self.n_candidates, self.space.dim))
            mean, std = self._ensemble_predict(candidates, weights)
            ei = expected_improvement(mean, std, best=float(np.max(self._y)))
            pof = probability_of_feasibility(mean, std, self._tau)
            vec = candidates[int(np.argmax(ei * pof))]
        self._pending = vec
        return self.space.from_unit(vec)

    def observe(self, feedback: Feedback) -> None:
        vec = (self._pending if self._pending is not None
               else self.space.to_unit(feedback.config))
        self._X.append(np.asarray(vec))
        self._y.append(float(feedback.performance))
        self._pending = None
