"""QTune-like query-aware tuner (Li et al., VLDB 2019), workload level.

QTune featurizes queries and *predicts* internal metrics from workload
features through a pre-trained model, feeding the prediction (rather than
the measured metrics) into a DDPG agent.  We reproduce that structure: a
lightweight workload featurizer (query-type histogram + arrival rate), an
online-trained MLP predictor (workload feature -> internal metrics), and
the same DDPG machinery as the CDBTune baseline with the predicted metrics
as state.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..knobs.knob import Configuration, KnobSpace
from ..ml.mlp import MLP
from ..workloads.base import WorkloadSnapshot
from .base import Feedback, SuggestInput
from .ddpg import DDPGTuner, METRIC_KEYS, metrics_vector

__all__ = ["QTuneTuner", "workload_feature", "WORKLOAD_FEATURE_DIM"]

_KEYWORDS = ("select", "insert", "update", "delete")
WORKLOAD_FEATURE_DIM = len(_KEYWORDS) + 3   # histogram + rate + rows + filter


def workload_feature(snapshot: WorkloadSnapshot) -> np.ndarray:
    """QTune's workload-level query feature (vectorized query info)."""
    counts = np.zeros(len(_KEYWORDS))
    for sql in snapshot.queries:
        head = sql.lstrip()[:12].lower()
        for i, kw in enumerate(_KEYWORDS):
            if head.startswith(kw):
                counts[i] += 1
                break
    total = counts.sum()
    hist = counts / total if total > 0 else counts
    rate = np.log1p(max(snapshot.arrival_rate, 0.0)) / 12.0
    rows = (np.log1p(float(np.mean(snapshot.rows_examined))) / 20.0
            if snapshot.rows_examined else 0.0)
    filt = float(np.mean(snapshot.filter_ratios)) if snapshot.filter_ratios else 0.0
    return np.concatenate([hist, [rate, rows, filt]])


class QTuneTuner(DDPGTuner):
    """DDPG with predicted (not measured) internal metrics as state."""

    name = "QTune"

    def __init__(self, space: KnobSpace, predictor_hidden: int = 32,
                 predictor_lr: float = 3e-3, predictor_epochs: int = 2,
                 seed: int = 0, **ddpg_kwargs) -> None:
        super().__init__(space, seed=seed, **ddpg_kwargs)
        self.predictor = MLP(
            [WORKLOAD_FEATURE_DIM, predictor_hidden, len(METRIC_KEYS)],
            ["relu", "linear"], lr=predictor_lr, seed=seed + 7)
        self.predictor_epochs = int(predictor_epochs)
        self._train_X: List[np.ndarray] = []
        self._train_y: List[np.ndarray] = []
        self._pending_feature: Optional[np.ndarray] = None

    def suggest(self, inp: SuggestInput) -> Configuration:
        feature = workload_feature(inp.snapshot)
        self._pending_feature = feature
        predicted = self.predictor(feature[None, :])[0]
        state = predicted
        if self._initial_perf is None:
            self._initial_perf = inp.default_performance
        if self._steps < self.warmup:
            action = self.rng.random(self.action_dim)
        else:
            action = self.actor(state[None, :])[0]
            sigma = self.noise_sigma * (self.noise_decay ** self._steps)
            action = np.clip(action + self.rng.normal(0.0, sigma, self.action_dim),
                             0.0, 1.0)
        self._state = state
        self._action = action
        return self.space.from_unit(action)

    def observe(self, feedback: Feedback) -> None:
        # train the metric predictor on (workload feature -> measured metrics)
        if self._pending_feature is not None:
            target = metrics_vector(feedback.metrics)
            self._train_X.append(self._pending_feature)
            self._train_y.append(target)
            recent = slice(max(0, len(self._train_X) - 64), None)
            X = np.array(self._train_X[recent])
            y = np.array(self._train_y[recent])
            for _ in range(self.predictor_epochs):
                self.predictor.train_step_mse(X, y)
            self._pending_feature = None
        super().observe(feedback)
