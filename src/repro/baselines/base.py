"""Common tuner interface shared by OnlineTune and all baselines.

The harness drives every tuner through the same loop:

1. :meth:`BaseTuner.suggest` receives a :class:`SuggestInput` (what a real
   controller can observe *before* choosing a configuration: the workload
   snapshot, last interval's internal metrics, and the default/safety
   performance for the current context) and returns a configuration.
2. The configuration runs for one interval.
3. :meth:`BaseTuner.observe` receives the :class:`Feedback`.

All performance values are *maximization* objectives (OLAP execution time
is negated by the harness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..knobs.knob import Configuration, KnobSpace
from ..workloads.base import WorkloadSnapshot

__all__ = ["SuggestInput", "Feedback", "BaseTuner", "DefaultTuner"]


@dataclass
class SuggestInput:
    """Everything observable at the start of a tuning interval."""

    iteration: int
    snapshot: WorkloadSnapshot
    metrics: Dict[str, float]           # internal metrics from last interval
    default_performance: float          # safety threshold tau_t
    is_olap: bool = False


@dataclass
class Feedback:
    """Everything observable at the end of a tuning interval."""

    iteration: int
    config: Configuration
    performance: float                  # measured objective (maximize)
    metrics: Dict[str, float]
    failed: bool
    default_performance: float

    @property
    def improvement(self) -> float:
        """Relative improvement over the default: (f - tau) / |tau|."""
        tau = self.default_performance
        return (self.performance - tau) / max(abs(tau), 1e-9)


class BaseTuner:
    """Abstract tuner."""

    name = "base"

    def __init__(self, space: KnobSpace, seed: int = 0) -> None:
        self.space = space
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)

    def start(self, initial_config: Configuration,
              initial_performance: float) -> None:
        """Called once with the initial (default) observation."""

    def suggest(self, inp: SuggestInput) -> Configuration:
        raise NotImplementedError

    def observe(self, feedback: Feedback) -> None:
        raise NotImplementedError


class DefaultTuner(BaseTuner):
    """Applies a fixed configuration forever (the Default baselines)."""

    name = "default"

    def __init__(self, space: KnobSpace, config: Optional[Configuration] = None,
                 seed: int = 0) -> None:
        super().__init__(space, seed)
        self.config = dict(config or space.default_config())

    def suggest(self, inp: SuggestInput) -> Configuration:
        return dict(self.config)

    def observe(self, feedback: Feedback) -> None:
        pass
