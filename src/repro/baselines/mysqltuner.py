"""MysqlTuner baseline: pure white-box heuristic tuning.

Examines the last interval's DBMS metrics and applies the static
suggestion rules from :func:`repro.rules.suggest_config`.  No learning —
the paper shows it is safe but plateaus in a local optimum.
"""

from __future__ import annotations

from typing import Optional

from ..knobs.knob import Configuration, KnobSpace
from ..knobs.mysql_knobs import INSTANCE_MEMORY_BYTES, INSTANCE_VCPUS
from ..rules.mysql_rules import suggest_config
from ..rules.rule import RuleContext
from .base import BaseTuner, Feedback, SuggestInput

__all__ = ["MysqlTunerBaseline"]


class MysqlTunerBaseline(BaseTuner):
    """Iteratively applies MysqlTuner-style static heuristics."""

    name = "MysqlTuner"

    def __init__(self, space: KnobSpace,
                 memory_bytes: int = INSTANCE_MEMORY_BYTES,
                 vcpus: int = INSTANCE_VCPUS, seed: int = 0) -> None:
        super().__init__(space, seed)
        self.memory_bytes = memory_bytes
        self.vcpus = vcpus
        self._current: Optional[Configuration] = None

    def start(self, initial_config: Configuration,
              initial_performance: float) -> None:
        self._current = dict(initial_config)

    def suggest(self, inp: SuggestInput) -> Configuration:
        if self._current is None:
            self._current = self.space.default_config()
        ctx = RuleContext(memory_bytes=self.memory_bytes, vcpus=self.vcpus,
                          metrics=dict(inp.metrics), is_olap=inp.is_olap)
        self._current = suggest_config(self.space, self._current, ctx)
        return dict(self._current)

    def observe(self, feedback: Feedback) -> None:
        pass
