"""Baseline tuners compared against OnlineTune in the paper."""

from .base import BaseTuner, DefaultTuner, Feedback, SuggestInput
from .bo import BOTuner
from .ddpg import DDPGTuner, METRIC_KEYS, metrics_vector
from .mysqltuner import MysqlTunerBaseline
from .qtune import QTuneTuner, workload_feature
from .restune import ResTuneTuner, rgpe_weights

__all__ = [
    "BaseTuner",
    "DefaultTuner",
    "SuggestInput",
    "Feedback",
    "BOTuner",
    "DDPGTuner",
    "METRIC_KEYS",
    "metrics_vector",
    "QTuneTuner",
    "workload_feature",
    "ResTuneTuner",
    "rgpe_weights",
    "MysqlTunerBaseline",
]
