"""CDBTune-style DDPG baseline (Zhang et al., SIGMOD 2019).

Deep deterministic policy gradient over (internal metrics -> knob vector):
actor and critic MLPs with target networks, replay buffer, and Gaussian
exploration noise.  The reward follows CDBTune's spirit — improvement over
both the initial (default) performance and the previous interval.

Networks are the from-scratch numpy MLPs in :mod:`repro.ml.mlp`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from ..knobs.knob import Configuration, KnobSpace
from ..ml.mlp import MLP
from .base import BaseTuner, Feedback, SuggestInput

__all__ = ["DDPGTuner", "METRIC_KEYS"]

#: canonical ordering of the internal-metric state vector
METRIC_KEYS = (
    "buffer_pool_hit_rate", "dirty_pages_pct", "log_waits", "pending_writes",
    "qps_select", "qps_insert", "qps_update", "qps_delete",
    "rows_read_rate", "rows_written_rate", "lock_waits", "tmp_disk_tables",
    "threads_running", "spin_rounds_per_wait", "cpu_util", "io_util",
    "connections_active", "data_size_gb", "mem_pressure", "failed",
)


def metrics_vector(metrics: Dict[str, float]) -> np.ndarray:
    """Project a metrics dict onto the canonical state vector (log-scaled)."""
    vec = np.array([float(metrics.get(k, 0.0)) for k in METRIC_KEYS])
    return np.sign(vec) * np.log1p(np.abs(vec))


class ReplayBuffer:
    """Fixed-size FIFO experience store."""

    def __init__(self, capacity: int = 10000, seed: int = 0) -> None:
        self.buffer: Deque[Tuple] = deque(maxlen=capacity)
        self.rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self.buffer)

    def add(self, state, action, reward, next_state) -> None:
        self.buffer.append((state, action, reward, next_state))

    def sample(self, batch_size: int):
        idx = self.rng.integers(0, len(self.buffer), size=batch_size)
        states, actions, rewards, next_states = zip(*(self.buffer[i] for i in idx))
        return (np.array(states), np.array(actions),
                np.array(rewards), np.array(next_states))


class DDPGTuner(BaseTuner):
    """DDPG agent: internal metrics in, unit-space configuration out."""

    name = "DDPG"

    def __init__(self, space: KnobSpace, hidden: int = 64, gamma: float = 0.9,
                 actor_lr: float = 3e-4, critic_lr: float = 1e-3,
                 tau: float = 0.01, batch_size: int = 32,
                 noise_sigma: float = 0.15, noise_decay: float = 0.992,
                 warmup: int = 5, seed: int = 0) -> None:
        super().__init__(space, seed)
        self.state_dim = len(METRIC_KEYS)
        self.action_dim = space.dim
        self.gamma = float(gamma)
        self.tau = float(tau)
        self.batch_size = int(batch_size)
        self.noise_sigma = float(noise_sigma)
        self.noise_decay = float(noise_decay)
        self.warmup = int(warmup)

        # linear actor head centred at 0.5 (clipped to [0,1] at execution):
        # a sigmoid head saturates at knob extremes where its gradient
        # vanishes, permanently trapping the policy in a crashing corner
        self.actor = MLP([self.state_dim, hidden, hidden, self.action_dim],
                         ["relu", "relu", "linear"], lr=actor_lr, seed=seed)
        self.actor.layers[-1].W *= 0.01
        self.actor_target = MLP([self.state_dim, hidden, hidden, self.action_dim],
                                ["relu", "relu", "linear"], lr=actor_lr, seed=seed)
        self.actor_target.copy_from(self.actor)
        critic_in = self.state_dim + self.action_dim
        self.critic = MLP([critic_in, hidden, hidden, 1],
                          ["relu", "relu", "linear"], lr=critic_lr, seed=seed + 1)
        self.critic_target = MLP([critic_in, hidden, hidden, 1],
                                 ["relu", "relu", "linear"], lr=critic_lr, seed=seed + 1)
        self.critic_target.copy_from(self.critic)

        self.replay = ReplayBuffer(seed=seed)
        self._state: Optional[np.ndarray] = None
        self._action: Optional[np.ndarray] = None
        self._initial_perf: Optional[float] = None
        self._prev_perf: Optional[float] = None
        self._steps = 0

    # -- reward (CDBTune-inspired) --------------------------------------
    def _reward(self, perf: float, tau0: float) -> float:
        base = max(abs(self._initial_perf or tau0), 1e-9)
        delta0 = (perf - (self._initial_perf or tau0)) / base
        prev = self._prev_perf if self._prev_perf is not None else tau0
        delta_t = (perf - prev) / max(abs(prev), 1e-9)
        reward = delta0 + 0.5 * delta_t
        return float(np.clip(reward, -5.0, 5.0))

    # -- interaction ------------------------------------------------------
    def suggest(self, inp: SuggestInput) -> Configuration:
        state = metrics_vector(inp.metrics)
        if self._initial_perf is None:
            self._initial_perf = inp.default_performance
        if self._steps < self.warmup or self.rng.random() < 0.05:
            # occasional uniform actions keep the replay buffer diverse and
            # let the critic learn the unsafe cliffs instead of saturating
            action = self.rng.random(self.action_dim)
        else:
            action = 0.5 + self.actor(state[None, :])[0]
            # the noise floor prevents a deterministic policy from looping
            # on one (possibly crashing) configuration forever
            sigma = max(0.03, self.noise_sigma * (self.noise_decay ** self._steps))
            action = np.clip(action + self.rng.normal(0.0, sigma, self.action_dim),
                             0.0, 1.0)
        self._state = state
        self._action = action
        return self.space.from_unit(action)

    def observe(self, feedback: Feedback) -> None:
        next_state = metrics_vector(feedback.metrics)
        if feedback.failed:
            reward = -5.0  # a crash is the worst outcome the agent can cause
        else:
            reward = self._reward(feedback.performance, feedback.default_performance)
        if self._state is not None and self._action is not None:
            self.replay.add(self._state, self._action, reward, next_state)
        self._prev_perf = feedback.performance
        self._steps += 1
        if len(self.replay) >= self.batch_size:
            self._train_step()

    # -- learning -------------------------------------------------------------
    def _train_step(self) -> None:
        states, actions, rewards, next_states = self.replay.sample(self.batch_size)
        # critic update: y = r + gamma * Q'(s', mu'(s'))
        next_actions = np.clip(0.5 + self.actor_target(next_states), 0.0, 1.0)
        q_next = self.critic_target(np.hstack([next_states, next_actions]))[:, 0]
        targets = rewards + self.gamma * q_next
        self.critic.train_step_mse(np.hstack([states, actions]), targets[:, None])
        # actor update: ascend dQ/da through the critic
        policy_actions = 0.5 + self.actor(states)
        grad_q = np.zeros((self.batch_size, 1))
        grad_q[:, 0] = -1.0 / self.batch_size  # maximize Q => minimize -Q
        grad_input = self.critic.input_gradient(
            np.hstack([states, policy_actions]), grad_q)
        grad_actions = grad_input[:, self.state_dim:]
        self.actor.apply_output_gradient(states, grad_actions)
        # polyak averaging
        self.actor_target.copy_from(self.actor, tau=self.tau)
        self.critic_target.copy_from(self.critic, tau=self.tau)
