"""Cross-model fused kernel evaluation for batched GP appends.

The fleet-serving layer steps many tenant sessions per wall-clock
interval; each step ends with every tenant appending a handful of rows
to its own contextual GP.  Per-tenant factors must stay separate (they
are per-tenant posteriors), but the *kernel evaluation* feeding each
rank-k extension — the cross-covariance block ``K(X_old, X_new)`` — is
embarrassingly stackable for tenants sharing a knob space: with the
paper's additive kernel every block splits into a Matérn term over the
config slice and a linear term over the context slice, and both reduce
to inner products of (lengthscale-scaled) rows.  Stacking all tenants'
training rows into one matrix therefore turns N per-tenant GEMVs into
one GEMM pair, the classic memory-bound→compute-bound reshaping of
batched inference stacks.

:func:`execute_appends` drains a list of :class:`AppendRequest` (one per
model, typically produced by
:meth:`repro.core.clustering.ClusteredModels.stage_appends`): requests
whose kernels match the additive Matérn+linear column-slice structure
and share a ``(config_dim, context_dim)`` shape are fused; everything
else takes the per-model :meth:`~repro.gp.contextual.ContextualGP.
update_batch` path unchanged.  Fused or not, each model then performs
its own rank-k Cholesky extension, so posteriors are identical to the
unfused path up to GEMM-blocking roundoff (covered by the 1e-8
equivalence suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .kernels import ColumnSliceKernel, LinearKernel, Matern52Kernel

__all__ = ["AppendRequest", "execute_appends"]


@dataclass
class AppendRequest:
    """Pending rows for one contextual GP.

    ``on_commit`` (if given) runs after the model has absorbed the rows —
    the hook owners use to flip their dirty/fitted bookkeeping, mirroring
    what their lazy refit path would have done.  Each request in a batch
    must target a distinct model: the fused kernel blocks are computed
    against every model's *current* training set before any extension
    runs.
    """

    model: object                 # ContextualGP (duck-typed, no import cycle)
    configs: np.ndarray
    contexts: np.ndarray
    y: np.ndarray
    on_commit: Optional[Callable[[], None]] = None


def _fuse_key(request: AppendRequest) -> Optional[Tuple[int, int]]:
    """Grouping key for fuseable requests, or None for the direct path."""
    model = request.model
    split = getattr(model, "_split", None)
    gp = getattr(model, "gp", None)
    if split is None or gp is None or gp.n_observations == 0:
        return None
    config_part, context_part = split
    if not (isinstance(config_part, ColumnSliceKernel)
            and isinstance(config_part.inner, Matern52Kernel)
            and isinstance(context_part, ColumnSliceKernel)
            and isinstance(context_part.inner, LinearKernel)):
        return None
    return (int(model.config_dim), int(model.context_dim))


def _execute_fused(group: List[AppendRequest]) -> None:
    """Absorb a same-shape group through one stacked GEMM pair.

    Per-model lengthscales are folded into the stacked rows (both sides
    of each model's block scale by the same factor), per-model variances
    and the linear bias are applied during block extraction, and the
    Matérn nonlinearity runs vectorized per block — so each extracted
    ``K12`` equals what the model's own kernel would have produced, up
    to BLAS blocking roundoff.
    """
    stacked = []
    row_ofs, col_ofs = [0], [0]
    A_rows, Q_rows, B_rows, P_rows = [], [], [], []
    for request in group:
        model = request.model
        gp = model.gp
        config_part, context_part = model._split
        matern, lin = config_part.inner, context_part.inner
        X_train = gp._X
        Xq = model._join(request.configs, request.contexts)
        sc, sx = config_part.columns, context_part.columns
        A_rows.append(X_train[:, sc] / matern.lengthscale)
        Q_rows.append(Xq[:, sc] / matern.lengthscale)
        B_rows.append(X_train[:, sx])
        P_rows.append(Xq[:, sx])
        stacked.append((request, model, matern, lin))
        row_ofs.append(row_ofs[-1] + X_train.shape[0])
        col_ofs.append(col_ofs[-1] + Xq.shape[0])
    A = np.vstack(A_rows)                 # all tenants' training rows
    Q = np.vstack(Q_rows)                 # all tenants' new rows
    G = A @ Q.T                           # the cross-tenant GEMM
    H = np.vstack(B_rows) @ np.vstack(P_rows).T   # linear/context blocks
    an = np.sum(A ** 2, axis=1)
    qn = np.sum(Q ** 2, axis=1)
    for i, (request, model, matern, lin) in enumerate(stacked):
        r0, r1 = row_ofs[i], row_ofs[i + 1]
        c0, c1 = col_ofs[i], col_ofs[i + 1]
        # |a|^2 + |q|^2 - 2 a.q, clipped — the _sqdist arithmetic
        sq = an[r0:r1, None] + qn[None, c0:c1] - 2.0 * G[r0:r1, c0:c1]
        np.maximum(sq, 0.0, out=sq)
        sr = Matern52Kernel.SQRT5 * np.sqrt(sq)
        K12 = matern.variance * (1.0 + sr + sr ** 2 / 3.0) * np.exp(-sr)
        K12 += lin.variance * (H[r0:r1, c0:c1] + lin.bias)
        model.update_batch(request.configs, request.contexts, request.y,
                           cross_cov=K12)
        if request.on_commit is not None:
            request.on_commit()


def execute_appends(requests: Sequence[AppendRequest],
                    fuse: bool = True) -> Dict[str, int]:
    """Absorb every request; fuse same-shape kernel evaluations.

    Returns counters: total ``requests``/``rows`` processed, how many
    requests were ``fused``, and how many GEMM ``groups`` ran.  With
    ``fuse=False`` (or for requests whose kernels don't match the
    fuseable structure) each model evaluates its own kernel block — the
    exact per-model :meth:`update_batch` arithmetic.
    """
    stats = {"requests": 0, "rows": 0, "fused": 0, "groups": 0}
    groups: Dict[Tuple[int, int], List[AppendRequest]] = {}
    direct: List[AppendRequest] = []
    for request in requests:
        stats["requests"] += 1
        stats["rows"] += int(np.atleast_2d(
            np.asarray(request.configs)).shape[0])
        key = _fuse_key(request) if fuse else None
        if key is None:
            direct.append(request)
        else:
            groups.setdefault(key, []).append(request)
    for group in groups.values():
        if len(group) < 2:      # nothing to fuse with — skip the stacking
            direct.extend(group)
            continue
        _execute_fused(group)
        stats["fused"] += len(group)
        stats["groups"] += 1
    for request in direct:
        request.model.update_batch(request.configs, request.contexts,
                                   request.y)
        if request.on_commit is not None:
            request.on_commit()
    return stats
