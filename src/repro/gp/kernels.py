"""Covariance kernels for Gaussian-process regression.

OnlineTune's contextual surrogate uses an *additive* kernel
``k((theta,c),(theta',c')) = k_Theta(theta,theta') + k_C(c,c')`` with a
Matérn-5/2 kernel on configurations and a linear kernel on contexts
(Section 5.2) — the linear part models an overall context-driven trend and
the Matérn part the configuration-specific deviation.

All kernels expose ``theta`` (log-parameter vector) getters/setters plus
analytic gradients of K w.r.t. those log-parameters, which the GP uses for
marginal-likelihood optimization.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "Kernel",
    "RBFKernel",
    "Matern52Kernel",
    "LinearKernel",
    "SumKernel",
    "ColumnSliceKernel",
    "additive_contextual_kernel",
    "additive_split",
    "product_contextual_kernel",
    "AdditiveKernelFactory",
    "ProductKernel",
]


def _sqdist(X: np.ndarray, Y: np.ndarray, lengthscale: float) -> np.ndarray:
    Xs = X / lengthscale
    Ys = Y / lengthscale
    sq = (np.sum(Xs ** 2, axis=1)[:, None]
          + np.sum(Ys ** 2, axis=1)[None, :] - 2.0 * (Xs @ Ys.T))
    np.maximum(sq, 0.0, out=sq)
    return sq


class Kernel:
    """Base kernel interface."""

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        raise NotImplementedError

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.diag(self(X, X))

    # -- hyperparameters (log-space) ------------------------------------
    @property
    def theta(self) -> np.ndarray:
        raise NotImplementedError

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        raise NotImplementedError

    @property
    def bounds(self) -> List[tuple]:
        """Log-space bounds, one pair per theta entry."""
        raise NotImplementedError

    def gradients(self, X: np.ndarray) -> List[np.ndarray]:
        """dK/dtheta_i at K(X, X), one matrix per log-parameter."""
        raise NotImplementedError


class RBFKernel(Kernel):
    """Squared-exponential kernel ``s^2 exp(-r^2 / 2 l^2)``."""

    def __init__(self, lengthscale: float = 0.5, variance: float = 1.0) -> None:
        self.lengthscale = float(lengthscale)
        self.variance = float(variance)

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.atleast_2d(X)
        Y = X if Y is None else np.atleast_2d(Y)
        return self.variance * np.exp(-0.5 * _sqdist(X, Y, self.lengthscale))

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(np.atleast_2d(X).shape[0], self.variance)

    @property
    def theta(self) -> np.ndarray:
        return np.log([self.lengthscale, self.variance])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.lengthscale, self.variance = np.exp(value)

    @property
    def bounds(self) -> List[tuple]:
        # unit-hypercube inputs: lengthscales below ~0.2 mean "no
        # generalization" and are almost always a degenerate likelihood
        # optimum when observations cluster around one incumbent (noise
        # masquerading as short-scale structure)
        return [(math.log(0.2), math.log(20.0)), (math.log(1e-3), math.log(1e3))]

    def gradients(self, X: np.ndarray) -> List[np.ndarray]:
        X = np.atleast_2d(X)
        sq = _sqdist(X, X, self.lengthscale)
        K = self.variance * np.exp(-0.5 * sq)
        return [K * sq, K.copy()]  # d/dlog(l), d/dlog(s^2)


class Matern52Kernel(Kernel):
    """Matérn-5/2 kernel — the paper's configuration kernel."""

    SQRT5 = math.sqrt(5.0)

    def __init__(self, lengthscale: float = 0.5, variance: float = 1.0) -> None:
        self.lengthscale = float(lengthscale)
        self.variance = float(variance)

    def _r(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        return np.sqrt(_sqdist(X, Y, self.lengthscale))

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.atleast_2d(X)
        Y = X if Y is None else np.atleast_2d(Y)
        r = self._r(X, Y)
        sr = self.SQRT5 * r
        return self.variance * (1.0 + sr + sr ** 2 / 3.0) * np.exp(-sr)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(np.atleast_2d(X).shape[0], self.variance)

    @property
    def theta(self) -> np.ndarray:
        return np.log([self.lengthscale, self.variance])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.lengthscale, self.variance = np.exp(value)

    @property
    def bounds(self) -> List[tuple]:
        # see RBFKernel.bounds for the lengthscale floor rationale
        return [(math.log(0.3), math.log(20.0)), (math.log(1e-3), math.log(1e3))]

    def gradients(self, X: np.ndarray) -> List[np.ndarray]:
        X = np.atleast_2d(X)
        r = self._r(X, X)
        sr = self.SQRT5 * r
        K = self.variance * (1.0 + sr + sr ** 2 / 3.0) * np.exp(-sr)
        # dK/dr = -variance * (sqrt5/3) * sr * (1 + sr) * exp(-sr) * sqrt5... derive:
        # K = v (1 + a + a^2/3) e^-a, a = sqrt5 r / l.  dK/da = v e^-a (1 + 2a/3 - 1 - a - a^2/3)
        #   = -v e^-a (a/3)(1 + a).  d a/d log l = -a, so dK/dlog l = v e^-a (a^2/3)(1+a).
        a = sr
        dK_dlogl = self.variance * np.exp(-a) * (a ** 2 / 3.0) * (1.0 + a)
        return [dK_dlogl, K.copy()]


class LinearKernel(Kernel):
    """Linear (dot-product) kernel ``s^2 (x . y + c)``."""

    def __init__(self, variance: float = 1.0, bias: float = 1.0) -> None:
        self.variance = float(variance)
        self.bias = float(bias)

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.atleast_2d(X)
        Y = X if Y is None else np.atleast_2d(Y)
        return self.variance * (X @ Y.T + self.bias)

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(X)
        return self.variance * (np.sum(X ** 2, axis=1) + self.bias)

    @property
    def theta(self) -> np.ndarray:
        return np.log([self.variance])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.variance = float(np.exp(value[0]))

    @property
    def bounds(self) -> List[tuple]:
        return [(math.log(1e-4), math.log(1e3))]

    def gradients(self, X: np.ndarray) -> List[np.ndarray]:
        return [self(X, X)]


class ColumnSliceKernel(Kernel):
    """Apply an inner kernel to a column slice of the input.

    This is how the joint (theta, c) input is split: the configuration
    kernel sees columns ``[0, split)`` and the context kernel the rest.
    """

    def __init__(self, inner: Kernel, columns: slice) -> None:
        self.inner = inner
        self.columns = columns

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.atleast_2d(X)[:, self.columns]
        Y = None if Y is None else np.atleast_2d(Y)[:, self.columns]
        return self.inner(X, Y)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.inner.diag(np.atleast_2d(X)[:, self.columns])

    @property
    def theta(self) -> np.ndarray:
        return self.inner.theta

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.inner.theta = value

    @property
    def bounds(self) -> List[tuple]:
        return self.inner.bounds

    def gradients(self, X: np.ndarray) -> List[np.ndarray]:
        return self.inner.gradients(np.atleast_2d(X)[:, self.columns])


class SumKernel(Kernel):
    """Sum of kernels with concatenated hyperparameters."""

    def __init__(self, parts: Sequence[Kernel]) -> None:
        self.parts = list(parts)

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        result = self.parts[0](X, Y)
        for part in self.parts[1:]:
            result = result + part(X, Y)
        return result

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.sum([part.diag(X) for part in self.parts], axis=0)

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([part.theta for part in self.parts])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        offset = 0
        for part in self.parts:
            size = len(part.theta)
            part.theta = value[offset: offset + size]
            offset += size

    @property
    def bounds(self) -> List[tuple]:
        out: List[tuple] = []
        for part in self.parts:
            out.extend(part.bounds)
        return out

    def gradients(self, X: np.ndarray) -> List[np.ndarray]:
        out: List[np.ndarray] = []
        for part in self.parts:
            out.extend(part.gradients(X))
        return out


class ProductKernel(Kernel):
    """Elementwise product of two kernels (ablation alternative)."""

    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        return self.left(X, Y) * self.right(X, Y)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) * self.right.diag(X)

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.left.theta, self.right.theta])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        nl = len(self.left.theta)
        self.left.theta = value[:nl]
        self.right.theta = value[nl:]

    @property
    def bounds(self) -> List[tuple]:
        return list(self.left.bounds) + list(self.right.bounds)

    def gradients(self, X: np.ndarray) -> List[np.ndarray]:
        KL, KR = self.left(X, X), self.right(X, X)
        return ([g * KR for g in self.left.gradients(X)]
                + [KL * g for g in self.right.gradients(X)])


def additive_contextual_kernel(config_dim: int, context_dim: int) -> Kernel:
    """The paper's kernel: Matérn-5/2 on config + linear on context."""
    config_part = ColumnSliceKernel(Matern52Kernel(), slice(0, config_dim))
    context_part = ColumnSliceKernel(LinearKernel(),
                                     slice(config_dim, config_dim + context_dim))
    return SumKernel([config_part, context_part])


def additive_split(kernel: Kernel):
    """Split an additive two-block kernel into its column-slice parts.

    Returns ``(config_part, context_part)`` — the two
    :class:`ColumnSliceKernel` summands, in order — when ``kernel`` has
    the paper's structure ``k([theta|c], [theta'|c']) = k_Theta + k_C``,
    else ``None``.  The cross-iteration kernel-block cache uses the split
    to reuse the (expensive, stationary-candidate) config block while
    recomputing only the rank-1 context column each interval; summing the
    parts reproduces :meth:`SumKernel.__call__`'s arithmetic exactly.
    """
    if isinstance(kernel, SumKernel) and len(kernel.parts) == 2:
        first, second = kernel.parts
        if (isinstance(first, ColumnSliceKernel)
                and isinstance(second, ColumnSliceKernel)):
            return first, second
    return None


class AdditiveKernelFactory:
    """Picklable zero-argument factory for the paper's additive kernel.

    :class:`~repro.core.clustering.ClusteredModels` needs a fresh kernel
    per cluster model; a lambda closure would make the whole tuner
    unpicklable, which the checkpoint/service layer depends on.
    """

    def __init__(self, config_dim: int, context_dim: int) -> None:
        self.config_dim = int(config_dim)
        self.context_dim = int(context_dim)

    def __call__(self) -> Kernel:
        return additive_contextual_kernel(self.config_dim, self.context_dim)


def product_contextual_kernel(config_dim: int, context_dim: int) -> Kernel:
    """Ablation alternative: Matérn on config x RBF on context."""
    config_part = ColumnSliceKernel(Matern52Kernel(), slice(0, config_dim))
    context_part = ColumnSliceKernel(RBFKernel(),
                                     slice(config_dim, config_dim + context_dim))
    return ProductKernel(config_part, context_part)
