"""Acquisition functions for Bayesian optimization.

Expected Improvement drives the OtterTune-style BO baseline and ResTune's
constrained variant; UCB (Srinivas et al.) drives OnlineTune's in-safety-set
selection (Equation 4).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

__all__ = ["expected_improvement", "upper_confidence_bound",
           "lower_confidence_bound", "probability_of_feasibility"]


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float,
                         xi: float = 0.0) -> np.ndarray:
    """EI for maximization given posterior mean/std and incumbent ``best``."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    z = (mean - best - xi) / std
    return (mean - best - xi) * norm.cdf(z) + std * norm.pdf(z)


def upper_confidence_bound(mean: np.ndarray, std: np.ndarray,
                           beta: float = 2.0) -> np.ndarray:
    return np.asarray(mean) + beta * np.asarray(std)


def lower_confidence_bound(mean: np.ndarray, std: np.ndarray,
                           beta: float = 2.0) -> np.ndarray:
    return np.asarray(mean) - beta * np.asarray(std)


def probability_of_feasibility(mean: np.ndarray, std: np.ndarray,
                               threshold: float) -> np.ndarray:
    """P(f >= threshold) under a Gaussian posterior — used by ResTune-like
    constrained EI (EI x PoF)."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    return 1.0 - norm.cdf((threshold - mean) / std)
