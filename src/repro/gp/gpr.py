"""Gaussian-process regression with Cholesky solves and ML-II fitting.

Implements Equation 2 of the paper: posterior mean/variance given
observations, plus marginal-likelihood hyperparameter optimization via
scipy L-BFGS-B with analytic kernel gradients.  Targets are standardized
internally so kernel variance priors stay well-scaled.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
from scipy import linalg
from scipy.optimize import minimize

from .kernels import Kernel, Matern52Kernel

__all__ = ["GaussianProcess"]

_JITTER = 1e-8


class GaussianProcess:
    """GP regression model.

    Parameters
    ----------
    kernel:
        Covariance kernel; defaults to Matérn-5/2.
    noise:
        Initial observation-noise variance (on standardized targets).
    normalize_y:
        Standardize targets before fitting (recommended).
    optimize_noise:
        Learn the noise level jointly with kernel hyperparameters.
    """

    def __init__(self, kernel: Optional[Kernel] = None, noise: float = 1e-2,
                 normalize_y: bool = True, optimize_noise: bool = True) -> None:
        self.kernel = kernel or Matern52Kernel()
        self.noise = float(noise)
        self.normalize_y = normalize_y
        self.optimize_noise = optimize_noise
        self._X: Optional[np.ndarray] = None
        self._y_raw: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._L: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None

    # -- fitting -----------------------------------------------------------
    @property
    def n_observations(self) -> int:
        return 0 if self._X is None else self._X.shape[0]

    def fit(self, X: np.ndarray, y: np.ndarray, optimize: bool = True,
            restarts: int = 1, seed: int = 0) -> "GaussianProcess":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a GP on zero observations")
        self._X = X
        self._y_raw = y
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std()) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y = (y - self._y_mean) / self._y_std
        if optimize and X.shape[0] >= 3:
            self._optimize_hyperparameters(restarts, seed)
        self._factorize()
        return self

    def _pack(self) -> np.ndarray:
        theta = self.kernel.theta
        if self.optimize_noise:
            theta = np.append(theta, math.log(self.noise))
        return theta

    def _unpack(self, packed: np.ndarray) -> None:
        if self.optimize_noise:
            self.kernel.theta = packed[:-1]
            self.noise = float(np.exp(packed[-1]))
        else:
            self.kernel.theta = packed

    def _bounds(self):
        bounds = list(self.kernel.bounds)
        if self.optimize_noise:
            # targets are standardized; the cap keeps the noise from
            # swallowing all structure while still absorbing measurement
            # noise when observations cluster tightly around an incumbent
            bounds.append((math.log(1e-6), math.log(0.5)))
        return bounds

    def _neg_log_marginal(self, packed: np.ndarray) -> Tuple[float, np.ndarray]:
        self._unpack(packed)
        X, y = self._X, self._y
        n = X.shape[0]
        K = self.kernel(X, X) + (self.noise + _JITTER) * np.eye(n)
        try:
            L = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return 1e10, np.zeros_like(packed)
        alpha = linalg.cho_solve((L, True), y)
        nll = (0.5 * y @ alpha + np.log(np.diag(L)).sum()
               + 0.5 * n * math.log(2.0 * math.pi))
        # gradient: 0.5 tr((K^-1 - alpha alpha^T) dK/dtheta)
        K_inv = linalg.cho_solve((L, True), np.eye(n))
        inner = np.outer(alpha, alpha) - K_inv
        grads = []
        for dK in self.kernel.gradients(X):
            grads.append(-0.5 * float(np.sum(inner * dK)))
        if self.optimize_noise:
            grads.append(-0.5 * float(np.trace(inner)) * self.noise)
        return float(nll), np.asarray(grads)

    def _optimize_hyperparameters(self, restarts: int, seed: int) -> None:
        rng = np.random.default_rng(seed)
        bounds = self._bounds()
        starts = [self._pack()]
        for _ in range(max(0, restarts - 1)):
            starts.append(np.array([rng.uniform(lo, hi) for lo, hi in bounds]))
        best_val, best_packed = np.inf, self._pack()
        for start in starts:
            result = minimize(self._neg_log_marginal, start, jac=True,
                              bounds=bounds, method="L-BFGS-B",
                              options={"maxiter": 60})
            if result.fun < best_val:
                best_val, best_packed = float(result.fun), result.x
        self._unpack(best_packed)

    def _factorize(self) -> None:
        X, y = self._X, self._y
        n = X.shape[0]
        K = self.kernel(X, X) + (self.noise + _JITTER) * np.eye(n)
        jitter = _JITTER
        while True:
            try:
                self._L = linalg.cholesky(K + jitter * np.eye(n), lower=True)
                break
            except linalg.LinAlgError:
                jitter *= 10.0
                if jitter > 1.0:
                    raise
        self._alpha = linalg.cho_solve((self._L, True), y)

    # -- prediction -----------------------------------------------------------
    def predict(self, X: np.ndarray, return_std: bool = True):
        """Posterior mean (and stddev) in the original target units."""
        if self._X is None:
            raise RuntimeError("GaussianProcess used before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = self.kernel(self._X, X)
        mean = Ks.T @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._L, Ks, lower=True)
        var = self.kernel.diag(X) - np.sum(v ** 2, axis=0)
        np.maximum(var, 1e-12, out=var)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        if self._L is None:
            raise RuntimeError("GaussianProcess used before fit()")
        n = self._X.shape[0]
        return float(-(0.5 * self._y @ self._alpha
                       + np.log(np.diag(self._L)).sum()
                       + 0.5 * n * math.log(2.0 * math.pi)))

    def sample_posterior(self, X: np.ndarray, n_samples: int = 1,
                         seed: int = 0) -> np.ndarray:
        """Draw joint posterior samples at X (shape: n_samples x len(X))."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        mean, _ = self.predict(X)
        Ks = self.kernel(self._X, X)
        v = linalg.solve_triangular(self._L, Ks, lower=True)
        cov = self.kernel(X, X) - v.T @ v
        cov = cov * self._y_std ** 2
        cov += 1e-10 * np.eye(cov.shape[0])
        rng = np.random.default_rng(seed)
        return rng.multivariate_normal(mean, cov, size=n_samples,
                                       method="cholesky" if cov.shape[0] < 400 else "eigh")
