"""Gaussian-process regression with Cholesky solves and ML-II fitting.

Implements Equation 2 of the paper: posterior mean/variance given
observations, plus marginal-likelihood hyperparameter optimization via
scipy L-BFGS-B with analytic kernel gradients.  Targets are standardized
internally so kernel variance priors stay well-scaled.

Storage is columnar: observations live in geometrically-grown capacity
buffers so :meth:`GaussianProcess.add_point` can append in O(n^2) — a
rank-1 Cholesky update of the existing factor — instead of the O(n^3)
refactorization a full :meth:`GaussianProcess.fit` performs, and
:meth:`GaussianProcess.add_points` extends the factor by a k-row block
with one triangular-solve GEMM (``L12 = L^-1 K12``), a small k x k
pivot Cholesky, and one blocked inverse-factor extension.  The updates
are exact (same factor a fresh Cholesky would produce, up to roundoff);
a periodic full refactorization bounds numerical drift and a jitter
fallback handles near-singular appends.

Alongside the factor the model maintains the forward solves
``fy = L^-1 y_raw`` and ``f1 = L^-1 1`` incrementally (O(kn) per
append), so the standardized dual vector ``beta = (fy - mu*f1)/sigma``
— and from it ``alpha = V^T beta`` — needs no V-sized passes on the
append hot path; ``alpha`` is materialized lazily only when a caller
actually predicts through it.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
from scipy import linalg
from scipy.optimize import minimize

from .kernels import Kernel, Matern52Kernel

__all__ = ["GaussianProcess"]

_JITTER = 1e-8

#: appends between forced full refactorizations (numerical-drift bound;
#: measured drift is ~1e-13 per 50 appends, so this keeps the factor far
#: inside the 1e-8 equivalence budget while amortizing the O(n^3) cost)
_REFACTOR_EVERY = 128

#: smallest allowed new pivot relative to the prior variance before the
#: rank-1 update is considered unstable and a full (jitter-escalating)
#: refactorization takes over
_MIN_PIVOT_RATIO = 1e-10

#: L-BFGS budget for a *cold* hyperparameter optimization (no previous
#: optimum) and for a *warm* refit started from the last optimum.  Under
#: the doubling schedule successive refits move hyperparameters very
#: little, so the warm budget can be a fraction of the cold one.
_COLD_MAXITER = 60
_WARM_MAXITER = 25

#: the bounded warm budget only applies at fits of at least this many
#: observations: below it each likelihood evaluation is cheap and early
#: refits still move hyperparameters a lot (the search is effectively
#: re-shaping the model), so small refits keep the full budget
_WARM_MIN_N = 96

#: warm refits additionally stop when one L-BFGS step improves the
#: negative log marginal likelihood by less than this relative amount —
#: the "bounded by marginal-likelihood improvement" rule (scipy's ftol:
#: stop when (f_k - f_{k+1}) <= ftol * max(|f_k|, |f_{k+1}|, 1)).
_WARM_FTOL = 1e-6


class GaussianProcess:
    """GP regression model.

    Parameters
    ----------
    kernel:
        Covariance kernel; defaults to Matérn-5/2.
    noise:
        Initial observation-noise variance (on standardized targets).
    normalize_y:
        Standardize targets before fitting (recommended).
    optimize_noise:
        Learn the noise level jointly with kernel hyperparameters.
    refactor_every:
        Full refactorizations are forced after this many incremental
        appends so floating-point drift in the updated factor stays
        bounded.
    warm_start_refits:
        Opt in to the bounded warm-refit budget: once hyperparameters
        have been optimized, later large (``n >= 96``) refits run a
        short improvement-gated L-BFGS from the previous optimum instead
        of the full search.  Off by default so baseline tuners that
        refit frequently keep their original search behavior; the
        clustered doubling-schedule path enables it.
    """

    def __init__(self, kernel: Optional[Kernel] = None, noise: float = 1e-2,
                 normalize_y: bool = True, optimize_noise: bool = True,
                 refactor_every: int = _REFACTOR_EVERY,
                 warm_start_refits: bool = False) -> None:
        self.kernel = kernel or Matern52Kernel()
        self.noise = float(noise)
        self.normalize_y = normalize_y
        self.optimize_noise = optimize_noise
        self.refactor_every = int(refactor_every)
        self.warm_start_refits = bool(warm_start_refits)
        self._n = 0
        self._dim: Optional[int] = None
        self._noise_scale: Optional[np.ndarray] = None   # per-point factors
        self._Xbuf: Optional[np.ndarray] = None     # raw inputs
        self._ybuf: Optional[np.ndarray] = None     # raw targets
        self._Lbuf: Optional[np.ndarray] = None     # lower Cholesky factor
        self._Vbuf: Optional[np.ndarray] = None     # inverse factor L^-1
        self._fybuf: Optional[np.ndarray] = None    # forward solve L^-1 y_raw
        self._f1buf: Optional[np.ndarray] = None    # forward solve L^-1 1
        self._y_mean = 0.0
        self._y_std = 1.0
        self._ys: Optional[np.ndarray] = None       # standardized targets
        self._alpha: Optional[np.ndarray] = None    # lazy cache of V^T beta
        self._diag_add = self.noise + 2.0 * _JITTER  # diagonal used in _Lbuf
        self._appends_since_refactor = 0
        #: bumped by every full (re)factorization — hyperparameter refits,
        #: unstable-append fallbacks, and the periodic drift-bounding
        #: refactorization all rebuild ``L``/``V`` wholesale, so any cache
        #: derived from the old factor (the candidate kernel-block cache)
        #: must be dropped.  Pure rank-1 appends *extend* the factor and
        #: leave the version unchanged.
        self.factor_version = 0
        self.last_opt_warm = False
        self.last_opt_nit = 0
        self.hyperopt_count = 0

    # -- columnar views ------------------------------------------------------
    @property
    def _X(self) -> Optional[np.ndarray]:
        return None if self._Xbuf is None or self._n == 0 else self._Xbuf[:self._n]

    @property
    def _y_raw(self) -> Optional[np.ndarray]:
        return None if self._ybuf is None or self._n == 0 else self._ybuf[:self._n]

    @property
    def _y(self) -> Optional[np.ndarray]:
        return self._ys

    @property
    def _L(self) -> Optional[np.ndarray]:
        return None if self._Lbuf is None or self._n == 0 \
            else self._Lbuf[:self._n, :self._n]

    @property
    def _V(self) -> Optional[np.ndarray]:
        """View of the cached inverse Cholesky factor ``L^-1``.

        Kept alongside ``L`` so the prediction and append hot paths run on
        plain BLAS matmuls over buffer views — scipy's triangular solves
        would re-copy the (non-contiguous) factor view on every call.
        """
        return None if self._Vbuf is None or self._n == 0 \
            else self._Vbuf[:self._n, :self._n]

    @property
    def n_observations(self) -> int:
        return self._n

    def _ensure_capacity(self, n: int, dim: int) -> None:
        # the factor buffers are allocated uninitialized: every cell the
        # math reads is written first (the [:n, :n] views by _factorize,
        # the new row/column by add_point, which also zeroes the upper
        # column stub), and __getstate__ trims to [:n, :n] — so the
        # O(cap^2) zeroing pass would be pure memory traffic on the
        # capacity-doubling hot path
        if self._Xbuf is None or self._dim != dim:
            cap = max(64, 1 << (n - 1).bit_length())
            self._dim = dim
            self._Xbuf = np.empty((cap, dim))
            self._ybuf = np.empty(cap)
            self._Lbuf = np.empty((cap, cap))
            self._Vbuf = np.empty((cap, cap))
            self._fybuf = np.empty(cap)
            self._f1buf = np.empty(cap)
            return
        cap = self._Xbuf.shape[0]
        if n <= cap:
            return
        new_cap = 1 << (n - 1).bit_length()
        Xbuf = np.empty((new_cap, dim))
        ybuf = np.empty(new_cap)
        Lbuf = np.empty((new_cap, new_cap))
        Vbuf = np.empty((new_cap, new_cap))
        fybuf = np.empty(new_cap)
        f1buf = np.empty(new_cap)
        Xbuf[:self._n] = self._Xbuf[:self._n]
        ybuf[:self._n] = self._ybuf[:self._n]
        Lbuf[:self._n, :self._n] = self._Lbuf[:self._n, :self._n]
        Vbuf[:self._n, :self._n] = self._Vbuf[:self._n, :self._n]
        fybuf[:self._n] = self._fybuf[:self._n]
        f1buf[:self._n] = self._f1buf[:self._n]
        self._Xbuf, self._ybuf, self._Lbuf, self._Vbuf = Xbuf, ybuf, Lbuf, Vbuf
        self._fybuf, self._f1buf = fybuf, f1buf

    # -- serialization -------------------------------------------------------
    def __getstate__(self):
        """Pickle with capacity buffers trimmed to their logical size.

        The geometric buffers can be 2x oversized in each dimension
        (4x bytes for the square factors); everything past ``_n`` is
        uninitialized scratch.  All math runs on ``[:n]`` views, so a
        resumed model is numerically indistinguishable — it just
        re-grows capacity on its next append.
        """
        state = self.__dict__.copy()
        n = self._n
        if self._Xbuf is not None and n < self._Xbuf.shape[0]:
            state["_Xbuf"] = self._Xbuf[:n].copy()
            state["_ybuf"] = self._ybuf[:n].copy()
            state["_Lbuf"] = self._Lbuf[:n, :n].copy()
            state["_Vbuf"] = self._Vbuf[:n, :n].copy()
            state["_fybuf"] = self._fybuf[:n].copy()
            state["_f1buf"] = self._f1buf[:n].copy()
        # alpha is a lazily derived cache — dropping it keeps envelopes
        # byte-stable regardless of whether a prediction happened to run
        state["_alpha"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__.setdefault("_alpha", None)
        if "_fybuf" not in state:
            # checkpoint from before the forward-solve buffers existed:
            # both are derivable from the stored factor and raw targets
            if self.__dict__.get("_Vbuf") is not None and self._n > 0:
                n = self._n
                V = self._Vbuf[:n, :n]
                self._fybuf = V @ self._ybuf[:n]
                self._f1buf = V.sum(axis=1)
            else:
                self._fybuf = None
                self._f1buf = None

    # -- fitting -----------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray, optimize: bool = True,
            restarts: int = 1, seed: int = 0,
            noise_scale: Optional[np.ndarray] = None) -> "GaussianProcess":
        """Fit on (X, y); ``noise_scale`` optionally inflates the noise of
        individual observations (heteroscedastic diagonal ``noise *
        scale_i``), the mechanism the service layer uses to down-weight
        transferred observations.  ``None`` (or all ones) keeps the exact
        homoscedastic arithmetic of the scalar-noise path."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a GP on zero observations")
        n, dim = X.shape
        if noise_scale is not None:
            scale = np.asarray(noise_scale, dtype=float).ravel()
            if scale.shape[0] != n:
                raise ValueError(f"noise_scale length {scale.shape[0]} != {n}")
            if np.any(scale <= 0) or not np.all(np.isfinite(scale)):
                raise ValueError("noise_scale entries must be positive finite")
            self._noise_scale = None if np.all(scale == 1.0) else scale.copy()
        else:
            self._noise_scale = None
        self._ensure_capacity(n, dim)
        self._Xbuf[:n] = X
        self._ybuf[:n] = y
        self._n = n
        self._standardize()
        if optimize and n >= 3:
            self._optimize_hyperparameters(restarts, seed)
        self._factorize()
        return self

    def _standardize(self) -> None:
        y = self._y_raw
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std()) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._ys = (y - self._y_mean) / self._y_std
        self._alpha = None

    def _pack(self) -> np.ndarray:
        theta = self.kernel.theta
        if self.optimize_noise:
            theta = np.append(theta, math.log(self.noise))
        return theta

    def _unpack(self, packed: np.ndarray) -> None:
        if self.optimize_noise:
            self.kernel.theta = packed[:-1]
            self.noise = float(np.exp(packed[-1]))
        else:
            self.kernel.theta = packed

    def _bounds(self):
        bounds = list(self.kernel.bounds)
        if self.optimize_noise:
            # targets are standardized; the cap keeps the noise from
            # swallowing all structure while still absorbing measurement
            # noise when observations cluster tightly around an incumbent
            bounds.append((math.log(1e-6), math.log(0.5)))
        return bounds

    def _neg_log_marginal(self, packed: np.ndarray) -> Tuple[float, np.ndarray]:
        self._unpack(packed)
        X, y = self._X, self._y
        n = X.shape[0]
        if self._noise_scale is None:
            K = self.kernel(X, X) + (self.noise + _JITTER) * np.eye(n)
        else:
            K = self.kernel(X, X)
            K[np.diag_indices(n)] += self.noise * self._noise_scale + _JITTER
        try:
            L = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return 1e10, np.zeros_like(packed)
        alpha = linalg.cho_solve((L, True), y)
        nll = (0.5 * y @ alpha + np.log(np.diag(L)).sum()
               + 0.5 * n * math.log(2.0 * math.pi))
        # gradient: 0.5 tr((K^-1 - alpha alpha^T) dK/dtheta)
        K_inv = linalg.cho_solve((L, True), np.eye(n))
        inner = np.outer(alpha, alpha) - K_inv
        grads = []
        for dK in self.kernel.gradients(X):
            grads.append(-0.5 * float(np.sum(inner * dK)))
        if self.optimize_noise:
            if self._noise_scale is None:
                grads.append(-0.5 * float(np.trace(inner)) * self.noise)
            else:
                grads.append(-0.5 * float(np.diag(inner) @ self._noise_scale)
                             * self.noise)
        return float(nll), np.asarray(grads)

    def _optimize_hyperparameters(self, restarts: int, seed: int) -> None:
        rng = np.random.default_rng(seed)
        bounds = self._bounds()
        current = self._pack()
        # warm start: fit() leaves the kernel at the last optimum, so on
        # a doubling-schedule refit ``current`` already is the previous
        # optimum — an excellent x0 that needs far fewer
        # (improvement-bounded) iterations.  Only large fits get the
        # bounded budget — they are the O(n^3) refits worth saving;
        # small ones keep the full search
        warm = (self.warm_start_refits and self.hyperopt_count > 0
                and self._n >= _WARM_MIN_N)
        starts = [current]
        for _ in range(max(0, restarts - 1)):
            starts.append(np.array([rng.uniform(lo, hi) for lo, hi in bounds]))
        best_val, best_packed = np.inf, current
        nit = 0
        for i, start in enumerate(starts):
            if warm and i == 0:
                options = {"maxiter": _WARM_MAXITER, "ftol": _WARM_FTOL}
            else:
                options = {"maxiter": _COLD_MAXITER}
            result = minimize(self._neg_log_marginal, start, jac=True,
                              bounds=bounds, method="L-BFGS-B",
                              options=options)
            nit += int(result.nit)
            if result.fun < best_val:
                best_val, best_packed = float(result.fun), result.x
        self._unpack(best_packed)
        self.last_opt_warm = warm
        self.last_opt_nit = nit
        self.hyperopt_count += 1

    def _factorize(self) -> None:
        X = self._X
        n = X.shape[0]
        if self._noise_scale is None:
            K = self.kernel(X, X) + (self.noise + _JITTER) * np.eye(n)
        else:
            K = self.kernel(X, X)
            K[np.diag_indices(n)] += self.noise * self._noise_scale + _JITTER
        jitter = _JITTER
        while True:
            try:
                L = linalg.cholesky(K + jitter * np.eye(n), lower=True)
                break
            except linalg.LinAlgError:
                jitter *= 10.0
                if jitter > 1.0:
                    raise
        self._Lbuf[:n, :n] = L
        self._Lbuf[:n, n:] = 0.0
        self._Vbuf[:n, :n] = linalg.solve_triangular(
            L, np.eye(n), lower=True, check_finite=False)
        self._Vbuf[:n, n:] = 0.0
        # record the exact diagonal inflation baked into the stored factor
        # so incremental appends extend the *same* matrix; with per-point
        # noise scales this is the unit-scale (native-observation) add,
        # which is what every incrementally appended point uses
        self._diag_add = self.noise + _JITTER + jitter
        self._appends_since_refactor = 0
        self.factor_version += 1
        # rebuild the forward solves from scratch; incremental appends
        # then extend them in O(kn) alongside the factor
        self._fybuf[:n] = self._Vbuf[:n, :n] @ self._ybuf[:n]
        self._f1buf[:n] = self._Vbuf[:n, :n].sum(axis=1)
        self._alpha = None

    def _beta_std(self) -> np.ndarray:
        """Standardized dual vector ``beta = L^-1 ys`` in O(n).

        ``L^-1 ys = (L^-1 y_raw - mu * L^-1 1) / sigma`` — assembled from
        the incrementally maintained forward solves, so no V-sized pass."""
        n = self._n
        return (self._fybuf[:n] - self._y_mean * self._f1buf[:n]) / self._y_std

    def _alpha_vec(self) -> np.ndarray:
        # alpha = K^-1 ys = V^T beta: one O(n^2) gemv, computed lazily and
        # cached until the targets or the factor change
        if self._alpha is None:
            self._alpha = self._V.T @ self._beta_std()
        return self._alpha

    # -- incremental appends ------------------------------------------------
    def add_point(self, x: np.ndarray, y: float,
                  k_col: Optional[np.ndarray] = None) -> "GaussianProcess":
        """Append one observation via a rank-1 Cholesky update (O(n^2)).

        Extends the stored factor ``L`` of ``K + diag_add*I`` with one
        row — ``l12 = L^-1 k(X, x)`` and pivot ``l22 = sqrt(k(x,x) +
        diag_add - |l12|^2)`` — extends the forward solves ``fy``/``f1``
        by their closed-form tails (O(n) dots), then re-standardizes the
        targets exactly (the target mean/std shift with every append).
        ``alpha`` is not refreshed here: it is derived lazily from the
        forward solves on the next prediction that needs it.
        Hyperparameters are left untouched; callers re-optimize on their
        own schedule via :meth:`fit`.  Falls back to a full
        refactorization when the new pivot is numerically unstable or
        every ``refactor_every`` appends.
        """
        x = np.asarray(x, dtype=float).ravel()
        yf = float(y)
        if self._n == 0 or self._Lbuf is None:
            return self.fit(x[None, :], np.array([yf]), optimize=False)
        if x.shape[0] != self._dim:
            raise ValueError(f"input dim {x.shape[0]} != {self._dim}")
        n = self._n
        self._ensure_capacity(n + 1, self._dim)
        if k_col is None:
            k = self.kernel(self._X, x[None, :]).ravel()
        else:
            # precomputed cross-covariance column from a fused
            # cross-model kernel evaluation (repro.gp.batching)
            k = np.asarray(k_col, dtype=float).ravel()
            if k.shape[0] != n:
                raise ValueError(f"k_col length {k.shape[0]} != {n}")
        k_ss = float(self.kernel.diag(x[None, :])[0]) + self._diag_add
        V = self._V
        l12 = V @ k                       # = L^-1 k, one O(n^2) gemv
        pivot_sq = k_ss - float(l12 @ l12)
        self._Xbuf[n] = x
        self._ybuf[n] = yf
        self._n = n + 1
        if self._noise_scale is not None:
            # appended observations are native (unit noise scale)
            self._noise_scale = np.append(self._noise_scale, 1.0)
        self._appends_since_refactor += 1
        unstable = (not np.isfinite(pivot_sq)
                    or pivot_sq <= _MIN_PIVOT_RATIO * max(k_ss, 1.0))
        if unstable or self._appends_since_refactor >= self.refactor_every:
            self._standardize()
            self._factorize()
            return self
        pivot = math.sqrt(pivot_sq)
        self._Lbuf[n, :n] = l12
        self._Lbuf[n, n] = pivot
        self._Lbuf[:n, n] = 0.0
        # the inverse factor extends in closed form:
        #   V_new = [[V, 0], [-(l12^T V)/l22, 1/l22]]
        self._Vbuf[n, :n] = (l12 @ V) / (-pivot)
        self._Vbuf[n, n] = 1.0 / pivot
        self._Vbuf[:n, n] = 0.0
        # forward solves gain one entry each: L'f' = [u; u_new] keeps the
        # head and appends (u_new - l12 . f) / pivot
        self._fybuf[n] = (yf - float(l12 @ self._fybuf[:n])) / pivot
        self._f1buf[n] = (1.0 - float(l12 @ self._f1buf[:n])) / pivot
        self._standardize()
        return self

    def add_points(self, X: np.ndarray, y: np.ndarray,
                   cross_cov: Optional[np.ndarray] = None
                   ) -> "GaussianProcess":
        """Append ``k`` observations via one rank-k Cholesky extension.

        Equivalent (to roundoff; see the 1e-8 equivalence suite) to ``k``
        sequential :meth:`add_point` calls, but the k column solves fuse
        into a single GEMM::

            L12 = L^-1 K(X_old, X_new)          # (n,n)x(n,k) GEMM
            S   = K(X_new, X_new) + diag_add*I - L12^T L12
            L22 = chol(S)                       # k x k pivot block
            V'  = [[V, 0], [-L22^-1 L12^T V, L22^-1]]

        and the forward solves extend blockwise with two k x k triangular
        solves.  ``cross_cov`` optionally supplies a precomputed
        ``K(X_old, X_new)`` (shape ``(n, k)``) so a cross-model batching
        layer can evaluate many models' kernel blocks in one fused GEMM
        (see :mod:`repro.gp.batching`).  The diagonal pivots of ``L22``
        undergo the same instability check as the sequential path — they
        *are* the sequential pivots, just computed blockwise — and any
        near-singular block falls back to the jitter-escalating full
        refactorization.  ``factor_version`` is unchanged on the pure
        extension path, so kernel-block caches extend by k rows instead
        of invalidating.  ``k == 1`` delegates to :meth:`add_point`
        bit-for-bit.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        k = X.shape[0]
        if k == 0:
            return self
        if self._n == 0 or self._Lbuf is None:
            return self.fit(X, y, optimize=False)
        if X.shape[1] != self._dim:
            raise ValueError(f"input dim {X.shape[1]} != {self._dim}")
        if k == 1:
            # keep the exact rank-1 fast path; a fused cross-covariance
            # column (the common fleet case) rides along
            col = None if cross_cov is None else \
                np.asarray(cross_cov, dtype=float).reshape(-1)
            return self.add_point(X[0], float(y[0]), k_col=col)
        n = self._n
        self._ensure_capacity(n + k, self._dim)
        if cross_cov is None:
            K12 = self.kernel(self._X, X)
        else:
            K12 = np.asarray(cross_cov, dtype=float)
            if K12.shape != (n, k):
                raise ValueError(
                    f"cross_cov shape {K12.shape} != {(n, k)}")
        K22 = self.kernel(X, X) + self._diag_add * np.eye(k)
        V = self._V
        L12 = V @ K12                     # k column solves in one GEMM
        S = K22 - L12.T @ L12
        self._Xbuf[n:n + k] = X
        self._ybuf[n:n + k] = y
        self._n = n + k
        if self._noise_scale is not None:
            # appended observations are native (unit noise scale)
            self._noise_scale = np.append(self._noise_scale, np.ones(k))
        self._appends_since_refactor += k
        try:
            L22 = linalg.cholesky(S, lower=True)
        except linalg.LinAlgError:
            L22 = None
        unstable = (L22 is None or not np.all(np.isfinite(L22))
                    or bool(np.any(np.diag(L22) ** 2 <= _MIN_PIVOT_RATIO
                                   * np.maximum(np.diag(K22), 1.0))))
        if unstable or self._appends_since_refactor >= self.refactor_every:
            self._standardize()
            self._factorize()
            return self
        m = self._n
        self._Lbuf[n:m, :n] = L12.T
        self._Lbuf[n:m, n:m] = L22
        self._Lbuf[:n, n:m] = 0.0
        # blocked inverse-factor extension: one (k,n)x(n,n) GEMM plus two
        # k x k triangular solves
        self._Vbuf[n:m, :n] = -linalg.solve_triangular(
            L22, L12.T @ V, lower=True, check_finite=False)
        self._Vbuf[n:m, n:m] = linalg.solve_triangular(
            L22, np.eye(k), lower=True, check_finite=False)
        self._Vbuf[:n, n:m] = 0.0
        # forward solves extend blockwise: tail = L22^-1 (u_new - L12^T f)
        self._fybuf[n:m] = linalg.solve_triangular(
            L22, y - L12.T @ self._fybuf[:n], lower=True, check_finite=False)
        self._f1buf[n:m] = linalg.solve_triangular(
            L22, np.ones(k) - L12.T @ self._f1buf[:n], lower=True,
            check_finite=False)
        self._standardize()
        return self

    # -- prediction -----------------------------------------------------------
    def predict(self, X: np.ndarray, return_std: bool = True):
        """Posterior mean (and stddev) in the original target units."""
        if self._X is None:
            raise RuntimeError("GaussianProcess used before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = self.kernel(self._X, X)
        mean = Ks.T @ self._alpha_vec()
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = self._V @ Ks                  # = L^-1 Ks, one gemm, no copies
        var = self.kernel.diag(X) - np.sum(v ** 2, axis=0)
        np.maximum(var, 1e-12, out=var)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        if self._L is None:
            raise RuntimeError("GaussianProcess used before fit()")
        n = self._n
        return float(-(0.5 * self._y @ self._alpha_vec()
                       + np.log(np.diag(self._L)).sum()
                       + 0.5 * n * math.log(2.0 * math.pi)))

    def sample_posterior(self, X: np.ndarray, n_samples: int = 1,
                         seed: int = 0) -> np.ndarray:
        """Draw joint posterior samples at X (shape: n_samples x len(X))."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        mean, _ = self.predict(X)
        Ks = self.kernel(self._X, X)
        v = self._V @ Ks
        cov = self.kernel(X, X) - v.T @ v
        cov = cov * self._y_std ** 2
        cov += 1e-10 * np.eye(cov.shape[0])
        rng = np.random.default_rng(seed)
        return rng.multivariate_normal(mean, cov, size=n_samples,
                                       method="cholesky" if cov.shape[0] < 400 else "eigh")
