"""Contextual Gaussian process over the joint (configuration, context) space.

Wraps :class:`~repro.gp.gpr.GaussianProcess` with the paper's additive
kernel and a convenience API that accepts configurations and contexts
separately.  Given a fixed observed context ``c_t`` the model exposes
mean / lower / upper confidence bounds over candidate configurations
(Equation 3), which the safety assessment and candidate selection use.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .gpr import GaussianProcess
from .kernels import Kernel, additive_contextual_kernel

__all__ = ["ContextualGP"]


class ContextualGP:
    """GP over joint inputs ``[theta | c]``.

    Parameters
    ----------
    config_dim, context_dim:
        Dimensions of the configuration and context blocks.
    kernel:
        Joint kernel; defaults to the paper's additive Matérn+linear kernel.
    beta:
        Confidence multiplier for the bounds (Srinivas et al. style).
    warm_start_refits:
        Forwarded to :class:`~repro.gp.gpr.GaussianProcess`: bounded
        warm hyperparameter refits for doubling-schedule callers.
    """

    def __init__(self, config_dim: int, context_dim: int,
                 kernel: Optional[Kernel] = None, noise: float = 1e-2,
                 beta: float = 2.0, warm_start_refits: bool = False) -> None:
        self.config_dim = int(config_dim)
        self.context_dim = int(context_dim)
        kernel = kernel or additive_contextual_kernel(config_dim, context_dim)
        self.gp = GaussianProcess(kernel=kernel, noise=noise,
                                  warm_start_refits=warm_start_refits)
        self.beta = float(beta)

    # -- data handling --------------------------------------------------
    def _join(self, configs: np.ndarray, contexts: np.ndarray) -> np.ndarray:
        configs = np.atleast_2d(np.asarray(configs, dtype=float))
        contexts = np.atleast_2d(np.asarray(contexts, dtype=float))
        if contexts.shape[0] == 1 and configs.shape[0] > 1:
            contexts = np.repeat(contexts, configs.shape[0], axis=0)
        if configs.shape[1] != self.config_dim:
            raise ValueError(f"config dim {configs.shape[1]} != {self.config_dim}")
        if contexts.shape[1] != self.context_dim:
            raise ValueError(f"context dim {contexts.shape[1]} != {self.context_dim}")
        return np.hstack([configs, contexts])

    @property
    def n_observations(self) -> int:
        return self.gp.n_observations

    def fit(self, configs: np.ndarray, contexts: np.ndarray, y: np.ndarray,
            optimize: bool = True,
            noise_scale: Optional[np.ndarray] = None) -> "ContextualGP":
        """Fit on joint inputs.

        ``noise_scale`` optionally inflates individual observation noise
        (``noise * scale_i`` on the diagonal) — the knowledge-transfer
        path passes ``1 / effective_weight`` for transferred observations
        so distant or decayed donors influence the posterior less.
        """
        X = self._join(configs, contexts)
        self.gp.fit(X, y, optimize=optimize, noise_scale=noise_scale)
        return self

    def update(self, config: np.ndarray, context: np.ndarray,
               y: float) -> "ContextualGP":
        """Incrementally absorb one observation (rank-1 Cholesky update).

        O(n^2) instead of the O(n^3) a full :meth:`fit` pays; kernel
        hyperparameters are kept fixed, so callers re-optimize on their
        own schedule via :meth:`fit`.
        """
        X = self._join(config, context)
        if X.shape[0] != 1:
            raise ValueError("update() accepts exactly one observation")
        self.gp.add_point(X[0], float(y))
        return self

    # -- prediction ------------------------------------------------------
    def predict(self, configs: np.ndarray, context: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and std for candidate configs at one context."""
        X = self._join(configs, context)
        return self.gp.predict(X)

    def confidence_bounds(self, configs: np.ndarray, context: np.ndarray,
                          beta: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(mean, lower, upper) bounds — Equation 3 of the paper."""
        beta = self.beta if beta is None else beta
        mean, std = self.predict(configs, context)
        return mean, mean - beta * std, mean + beta * std

    def lcb(self, configs: np.ndarray, context: np.ndarray,
            beta: Optional[float] = None) -> np.ndarray:
        _, lower, _ = self.confidence_bounds(configs, context, beta)
        return lower

    def ucb(self, configs: np.ndarray, context: np.ndarray,
            beta: Optional[float] = None) -> np.ndarray:
        _, _, upper = self.confidence_bounds(configs, context, beta)
        return upper
