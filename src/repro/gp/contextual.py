"""Contextual Gaussian process over the joint (configuration, context) space.

Wraps :class:`~repro.gp.gpr.GaussianProcess` with the paper's additive
kernel and a convenience API that accepts configurations and contexts
separately.  Given a fixed observed context ``c_t`` the model exposes
mean / lower / upper confidence bounds over candidate configurations
(Equation 3), which the safety assessment and candidate selection use.

Cross-iteration kernel-block cache
----------------------------------
The per-interval hot path evaluates the same candidate discretization
against a training set that grows by one row per interval.  With the
additive kernel the cross-covariance splits as ``K* = M + l·1^T`` where
``M = k_Theta(X_cfg, candidates)`` is the Matérn block over the config
slice (stationary while the discretization is unchanged) and ``l =
k_C(X_ctx, c_t)`` is a single column (one context per interval).  When
the caller passes a ``cache_token`` identifying the candidate set,
:meth:`ContextualGP.predict` caches ``M`` *and* the dominant GEMM
``V·M`` (``V = L^-1``), extending both by one row per appended
observation instead of recomputing the full ``n x m`` products.  The
cache invalidates on re-discretization (token/array change), on any full
refactorization of the GP (hyperparameter refit, unstable-append
fallback, periodic drift-bounding refactor — all bump
``GaussianProcess.factor_version``), and trivially on cluster
reassignment (cluster relearning rebuilds the models, and caches are
never pickled into checkpoints).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .gpr import GaussianProcess
from .kernels import Kernel, additive_contextual_kernel, additive_split

__all__ = ["ContextualGP"]


class _BlockCache:
    """One cached candidate block: identity key + derived matrices.

    ``M = k_Theta(X_cfg, candidates)`` and ``vM = V @ M`` live in
    geometrically-grown row buffers so per-interval extensions write one
    new row in place instead of reallocating the n x m blocks; the
    running per-candidate column sums of ``vM**2`` make the predictive
    variance an O(n m) GEMV away (no n x m temporaries on the hot path).
    """

    __slots__ = ("token", "candidates", "n", "factor_version",
                 "Mbuf", "vMbuf", "colsq")

    def __init__(self, token, candidates, n, factor_version,
                 M, vM) -> None:
        self.token = token
        self.candidates = candidates
        self.n = n
        self.factor_version = factor_version
        cap = max(64, 1 << (n - 1).bit_length()) if n > 0 else 64
        m = M.shape[1]
        self.Mbuf = np.empty((cap, m))
        self.vMbuf = np.empty((cap, m))
        self.Mbuf[:n] = M
        self.vMbuf[:n] = vM
        self.colsq = np.sum(vM ** 2, axis=0)

    def reserve(self, n: int) -> None:
        """Grow the row buffers (geometrically) to hold ``n`` rows."""
        cap = self.Mbuf.shape[0]
        if n <= cap:
            return
        new_cap = 1 << (n - 1).bit_length()
        Mbuf = np.empty((new_cap, self.Mbuf.shape[1]))
        vMbuf = np.empty((new_cap, self.vMbuf.shape[1]))
        Mbuf[:self.n] = self.Mbuf[:self.n]
        vMbuf[:self.n] = self.vMbuf[:self.n]
        self.Mbuf, self.vMbuf = Mbuf, vMbuf


class ContextualGP:
    """GP over joint inputs ``[theta | c]``.

    Parameters
    ----------
    config_dim, context_dim:
        Dimensions of the configuration and context blocks.
    kernel:
        Joint kernel; defaults to the paper's additive Matérn+linear kernel.
    beta:
        Confidence multiplier for the bounds (Srinivas et al. style).
    warm_start_refits:
        Forwarded to :class:`~repro.gp.gpr.GaussianProcess`: bounded
        warm hyperparameter refits for doubling-schedule callers.
    """

    def __init__(self, config_dim: int, context_dim: int,
                 kernel: Optional[Kernel] = None, noise: float = 1e-2,
                 beta: float = 2.0, warm_start_refits: bool = False) -> None:
        self.config_dim = int(config_dim)
        self.context_dim = int(context_dim)
        kernel = kernel or additive_contextual_kernel(config_dim, context_dim)
        self.gp = GaussianProcess(kernel=kernel, noise=noise,
                                  warm_start_refits=warm_start_refits)
        self.beta = float(beta)
        self._split = additive_split(self.gp.kernel)
        self._cache: Optional[_BlockCache] = None
        self.cache_hits = 0
        self.cache_extensions = 0
        self.cache_misses = 0

    def __getstate__(self):
        """Pickle without the kernel-block cache.

        Tokens are process-local and the cached matrices are derivable,
        so a resumed model simply rebuilds the cache on first use —
        through the miss path, whose outputs are bit-identical anyway.
        """
        state = self.__dict__.copy()
        state["_cache"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # models checkpointed before the cache existed lack its fields
        self.__dict__.setdefault("_cache", None)
        self.__dict__.setdefault("_split", additive_split(self.gp.kernel))
        for counter in ("cache_hits", "cache_extensions", "cache_misses"):
            self.__dict__.setdefault(counter, 0)

    # -- data handling --------------------------------------------------
    def _join(self, configs: np.ndarray, contexts: np.ndarray) -> np.ndarray:
        configs = np.atleast_2d(np.asarray(configs, dtype=float))
        contexts = np.atleast_2d(np.asarray(contexts, dtype=float))
        if contexts.shape[0] == 1 and configs.shape[0] > 1:
            contexts = np.repeat(contexts, configs.shape[0], axis=0)
        if configs.shape[1] != self.config_dim:
            raise ValueError(f"config dim {configs.shape[1]} != {self.config_dim}")
        if contexts.shape[1] != self.context_dim:
            raise ValueError(f"context dim {contexts.shape[1]} != {self.context_dim}")
        return np.hstack([configs, contexts])

    @property
    def n_observations(self) -> int:
        return self.gp.n_observations

    def fit(self, configs: np.ndarray, contexts: np.ndarray, y: np.ndarray,
            optimize: bool = True,
            noise_scale: Optional[np.ndarray] = None) -> "ContextualGP":
        """Fit on joint inputs.

        ``noise_scale`` optionally inflates individual observation noise
        (``noise * scale_i`` on the diagonal) — the knowledge-transfer
        path passes ``1 / effective_weight`` for transferred observations
        so distant or decayed donors influence the posterior less.
        """
        X = self._join(configs, contexts)
        self.gp.fit(X, y, optimize=optimize, noise_scale=noise_scale)
        return self

    def update(self, config: np.ndarray, context: np.ndarray,
               y) -> "ContextualGP":
        """Incrementally absorb observations (rank-1/rank-k update).

        O(kn^2) instead of the O(n^3) a full :meth:`fit` pays; kernel
        hyperparameters are kept fixed, so callers re-optimize on their
        own schedule via :meth:`fit`.  A single row takes the exact
        rank-1 path it always did; multiple rows route through
        :meth:`update_batch`.
        """
        X = self._join(config, context)
        if X.shape[0] == 1:
            self.gp.add_point(X[0], float(y))
            return self
        return self.update_batch(config, context, y)

    def update_batch(self, configs: np.ndarray, contexts: np.ndarray,
                     y: np.ndarray,
                     cross_cov: Optional[np.ndarray] = None
                     ) -> "ContextualGP":
        """Absorb k observations via one rank-k Cholesky extension.

        Equivalent (1e-8) to k sequential :meth:`update` calls; the k
        column solves fuse into one GEMM (see
        :meth:`GaussianProcess.add_points`).  ``cross_cov`` optionally
        carries a precomputed ``K(X_old, X_new)`` block from a fused
        cross-model kernel evaluation.
        """
        X = self._join(configs, contexts)
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("configs and y disagree on sample count")
        self.gp.add_points(X, y, cross_cov=cross_cov)
        return self

    # -- prediction ------------------------------------------------------
    def predict(self, configs: np.ndarray, context: np.ndarray,
                cache_token: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and std for candidate configs at one context.

        ``cache_token`` identifies the candidate discretization (see
        :attr:`repro.core.subspace.Subspace.discretize_token`); passing it
        enables the cross-iteration kernel-block cache.  ``None`` (the
        default, and every non-candidate caller) takes the plain path.
        """
        X = self._join(configs, context)
        if (cache_token is None or self._split is None
                or self.gp._X is None
                or np.atleast_2d(np.asarray(context)).shape[0] != 1):
            return self.gp.predict(X)
        return self._predict_candidates(configs, X, cache_token)

    def _predict_candidates(self, configs, Xq: np.ndarray,
                            token: int) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate-block prediction backed by the kernel-block cache.

        Miss path: computes the Matérn block ``M`` and context block
        explicitly and sums them — the exact arithmetic of
        :meth:`~repro.gp.kernels.SumKernel.__call__` — so outputs are
        bit-identical to :meth:`GaussianProcess.predict`; the only extra
        work is the ``V @ M`` GEMM that seeds the cache.  Hit path:
        extends ``M`` and ``V @ M`` by the rows appended since the cache
        was built and recomputes only the rank-1 context column, turning
        the per-interval O(n^2 m) GEMM into O(n m).
        """
        gp = self.gp
        config_part, context_part = self._split
        n = gp.n_observations
        cache = self._cache
        X_train = gp._X
        V = gp._V
        if (cache is not None and cache.token == token
                and cache.candidates is configs
                and cache.factor_version == gp.factor_version
                and cache.n <= n):
            if cache.n < n:
                cache.reserve(n)
                cache.Mbuf[cache.n:n] = config_part(X_train[cache.n:], Xq)
                v_rows = V[cache.n:] @ cache.Mbuf[:n]
                cache.vMbuf[cache.n:n] = v_rows
                cache.colsq += np.sum(v_rows ** 2, axis=0)
                cache.n = n
                self.cache_extensions += 1
            self.cache_hits += 1
            vM = cache.vMbuf[:n]
            l_col = context_part(X_train, Xq[:1])[:, 0]  # (n,) context column
            vl = V @ l_col                               # one n^2 GEMV
            beta = gp._beta_std()                        # O(n), no V pass
            # mean/var assembled from the additive structure without
            # materializing the n x m cross-covariance or alpha:
            #   K*^T alpha  = (V K*)^T beta = vM^T beta + (vl . beta)
            #   sum(v**2,0) = colsq(vM) + 2 vM^T vl + (vl . vl)
            mean = vM.T @ beta + float(vl @ beta)
            var = (gp.kernel.diag(Xq)
                   - (cache.colsq + 2.0 * (vM.T @ vl) + float(vl @ vl)))
        else:
            M = config_part(X_train, Xq)
            lin = context_part(X_train, Xq)
            Ks = M + lin                               # == SumKernel.__call__
            v = V @ Ks
            # seed the cache without a second n^2 m GEMM: V @ M is
            # recovered from v by subtracting the rank-1 context column's
            # image (one n^2 GEMV) — accurate to roundoff, which is all
            # later extensions need
            vM = v - V @ lin[:, :1]
            self._cache = _BlockCache(token, configs, n, gp.factor_version,
                                      M, vM)
            self.cache_misses += 1
            # same op as GaussianProcess.predict (bit-identical miss
            # contract); the lazy alpha materialization is off the
            # hot path — misses happen on re-discretization/refit only
            mean = Ks.T @ gp._alpha_vec()
            var = gp.kernel.diag(Xq) - np.sum(v ** 2, axis=0)
        mean = mean * gp._y_std + gp._y_mean
        np.maximum(var, 1e-12, out=var)
        std = np.sqrt(var) * gp._y_std
        return mean, std

    def confidence_bounds(self, configs: np.ndarray, context: np.ndarray,
                          beta: Optional[float] = None,
                          cache_token: Optional[int] = None
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(mean, lower, upper) bounds — Equation 3 of the paper."""
        beta = self.beta if beta is None else beta
        mean, std = self.predict(configs, context, cache_token=cache_token)
        return mean, mean - beta * std, mean + beta * std

    def lcb(self, configs: np.ndarray, context: np.ndarray,
            beta: Optional[float] = None) -> np.ndarray:
        _, lower, _ = self.confidence_bounds(configs, context, beta)
        return lower

    def ucb(self, configs: np.ndarray, context: np.ndarray,
            beta: Optional[float] = None) -> np.ndarray:
        _, _, upper = self.confidence_bounds(configs, context, beta)
        return upper
