"""Gaussian-process substrate (kernels, regression, contextual GP)."""

from .acquisition import (
    expected_improvement,
    lower_confidence_bound,
    probability_of_feasibility,
    upper_confidence_bound,
)
from .batching import AppendRequest, execute_appends
from .contextual import ContextualGP
from .gpr import GaussianProcess
from .kernels import (
    ColumnSliceKernel,
    Kernel,
    LinearKernel,
    Matern52Kernel,
    ProductKernel,
    RBFKernel,
    SumKernel,
    additive_contextual_kernel,
    product_contextual_kernel,
)

__all__ = [
    "GaussianProcess",
    "ContextualGP",
    "AppendRequest",
    "execute_appends",
    "Kernel",
    "RBFKernel",
    "Matern52Kernel",
    "LinearKernel",
    "SumKernel",
    "ProductKernel",
    "ColumnSliceKernel",
    "additive_contextual_kernel",
    "product_contextual_kernel",
    "expected_improvement",
    "upper_confidence_bound",
    "lower_confidence_bound",
    "probability_of_feasibility",
]
